(* swmodel: command-line front end.

   Predict, simulate and tune SWACC kernels on the simulated SW26010,
   and regenerate the paper's experiments. *)

open Cmdliner

let scale_arg =
  let doc = "Workload scale factor (1.0 = default evaluation size)." in
  Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let kernel_arg =
  let doc = "Kernel name (see $(b,swmodel list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let cgs_arg =
  let doc = "Core groups to use (1-4)." in
  Arg.(value & opt int 1 & info [ "cgs" ] ~docv:"N" ~doc)

let grain_arg =
  let doc = "Copy granularity in elements (the tile intrinsic)." in
  Arg.(value & opt (some int) None & info [ "grain" ] ~docv:"G" ~doc)

let unroll_arg =
  let doc = "Loop unroll factor." in
  Arg.(value & opt (some int) None & info [ "unroll" ] ~docv:"U" ~doc)

let cpes_arg =
  let doc = "Active CPEs." in
  Arg.(value & opt (some int) None & info [ "cpes" ] ~docv:"N" ~doc)

let db_arg =
  let doc = "Enable double buffering." in
  Arg.(value & flag & info [ "double-buffer" ] ~doc)

let domains_arg =
  let doc =
    "Assess work on $(docv) OCaml domains (0 = auto: \\$SWPM_DOMAINS or the host's recommended \
     count minus one).  Results are identical to a sequential run."
  in
  Arg.(value & opt (some int) None & info [ "j"; "domains" ] ~docv:"N" ~doc)

let pool_of domains =
  match domains with
  | None -> None
  | Some 0 -> Some (Sw_util.Pool.create ())
  | Some n -> Some (Sw_util.Pool.create ~size:n ())

let params_of_cgs cgs = Sw_arch.Params.with_cgs Sw_arch.Params.default cgs

let seed_arg =
  let doc =
    "Process-wide PRNG seed: the simulator's start jitter and every fault plan derive from it, \
     so two runs with the same seed are bit-identical."
  in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let faults_arg =
  let doc =
    "Inject deterministic faults planned from $(docv): jittered latency/bandwidth, transient \
     DMA failures (modeled retry + exponential backoff), straggler CPEs and throttled memory \
     controllers.  Same seed, same faults."
  in
  Arg.(value & opt (some int) None & info [ "faults" ] ~docv:"SEED" ~doc)

let fault_level_arg =
  let doc = "Fault severity for --faults: $(b,none), $(b,mild) or $(b,harsh)." in
  Arg.(value & opt string "mild" & info [ "fault-level" ] ~docv:"LEVEL" ~doc)

let fault_spec_of level =
  match Sw_fault.Fault.of_string level with
  | Some spec -> spec
  | None ->
      Printf.eprintf "swmodel: unknown fault level %S (available: none, mild, harsh)\n" level;
      exit 1

(* --seed sets the process-wide default and reseeds the simulator's
   start jitter; --faults then perturbs the configuration itself *)
let config_of params ~seed ~faults ~fault_level =
  Option.iter Sw_util.Prng.set_global_seed seed;
  let config =
    { (Sw_sim.Config.default params) with Sw_sim.Config.seed = Sw_util.Prng.global_seed () }
  in
  match faults with
  | None -> config
  | Some fseed -> Sw_fault.Fault.plan ~spec:(fault_spec_of fault_level) ~seed:fseed config

let backend_arg =
  let doc =
    "Cost backend: $(b,model) (static model), $(b,sim) (cycle-level simulator), $(b,hybrid) \
     (model + one profile) or $(b,roofline).  Aliases: static, static-model, empirical, \
     simulator."
  in
  Arg.(value & opt string "model" & info [ "backend"; "method" ] ~docv:"BACKEND" ~doc)

(* resolve a --backend flag, exiting with a readable message (and the
   list of known backends) instead of a backtrace on a typo *)
let backend_of_name name =
  match Sw_backend.Backend.find name with
  | Some b -> b
  | None ->
      Printf.eprintf "swmodel: unknown backend %S (available: %s)\n" name
        (String.concat ", " (Sw_backend.Backend.registered ()));
      exit 1

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON file of this run's telemetry to $(docv) — load it at \
     chrome://tracing or https://ui.perfetto.dev.  Machine tracks tick in simulated cycles, \
     host tracks in wall-clock microseconds; results are unchanged by tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* write the sink out and tell the user what landed in it *)
let write_trace path sink =
  Sw_obs.Chrome.write path sink;
  Printf.printf "wrote %s (%d spans, %d counters)\n" path (Sw_obs.Sink.span_count sink)
    (List.length (Sw_obs.Sink.counters sink))

let variant_of entry grain unroll cpes db =
  let base = entry.Sw_workloads.Registry.variant in
  {
    Sw_swacc.Kernel.grain = Option.value grain ~default:base.Sw_swacc.Kernel.grain;
    unroll = Option.value unroll ~default:base.Sw_swacc.Kernel.unroll;
    active_cpes = Option.value cpes ~default:base.Sw_swacc.Kernel.active_cpes;
    double_buffer = db || base.Sw_swacc.Kernel.double_buffer;
  }

let lower_entry params entry scale variant =
  let kernel = entry.Sw_workloads.Registry.build ~scale in
  Sw_swacc.Lower.lower_exn params kernel variant

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Sw_workloads.Registry.entry) ->
        Printf.printf "%-14s %-9s %s\n" e.name
          (match e.kind with Sw_workloads.Registry.Regular -> "regular" | Irregular -> "irregular")
          e.description)
      Sw_workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available kernels.") Term.(const run $ const ())

let table1_cmd =
  let run () = Format.printf "%a@." Sw_arch.Params.pp Sw_arch.Params.default in
  Cmd.v (Cmd.info "table1" ~doc:"Print the Table I machine parameters.") Term.(const run $ const ())

let predict_cmd =
  let run name scale cgs grain unroll cpes db backend_name trace seed faults fault_level =
    let entry = Sw_workloads.Registry.find_exn name in
    let params = params_of_cgs cgs in
    let variant = variant_of entry grain unroll cpes db in
    match (backend_name, trace, faults) with
    | ("model" | "static" | "static-model"), None, None ->
        let lowered = lower_entry params entry scale variant in
        Format.printf "%a@.@.%a@." Sw_swacc.Lowered.pp_summary lowered.Sw_swacc.Lowered.summary
          Swpm.Predict.pp
          (Swpm.Predict.predict_lowered params lowered)
    | _ -> (
        let sink = Option.map (fun _ -> Sw_obs.Sink.create ()) trace in
        let backend = backend_of_name backend_name in
        let backend =
          match sink with
          | Some s -> Sw_backend.Backend.instrument s backend
          | None -> backend
        in
        let config = config_of params ~seed ~faults ~fault_level in
        let kernel = entry.Sw_workloads.Registry.build ~scale in
        match Sw_backend.Backend.assess backend config kernel variant with
        | Error { Sw_backend.Backend.backend = b; reason } ->
            Printf.eprintf "swmodel: %s rejects %s: %s\n" b name reason;
            exit 1
        | Ok v ->
            (match v.Sw_backend.Backend.breakdown with
            | Some p -> Format.printf "%a@.@." Swpm.Predict.pp p
            | None -> ());
            Format.printf "%s: %.0f cycles (host %.3f s, machine %.0f us)@."
              (Sw_backend.Backend.name backend)
              v.Sw_backend.Backend.cycles v.Sw_backend.Backend.cost.Sw_backend.Backend.host_wall_s
              v.Sw_backend.Backend.cost.Sw_backend.Backend.machine_us;
            Option.iter (fun path -> write_trace path (Option.get sink)) trace)
  in
  Cmd.v
    (Cmd.info "predict" ~doc:"Price a kernel variant through a cost backend (default: the model).")
    Term.(
      const run $ kernel_arg $ scale_arg $ cgs_arg $ grain_arg $ unroll_arg $ cpes_arg $ db_arg
      $ backend_arg $ trace_arg $ seed_arg $ faults_arg $ fault_level_arg)

let simulate_cmd =
  let run name scale cgs grain unroll cpes db seed faults fault_level =
    let entry = Sw_workloads.Registry.find_exn name in
    let params = params_of_cgs cgs in
    let config = config_of params ~seed ~faults ~fault_level in
    let lowered =
      lower_entry config.Sw_sim.Config.params entry scale (variant_of entry grain unroll cpes db)
    in
    let row = Sw_backend.Accuracy.evaluate config lowered in
    Format.printf "%a@.@.Prediction:@.%a@.@.error: %.1f%%@." Sw_sim.Metrics.pp
      row.Sw_backend.Accuracy.measured Swpm.Predict.pp row.Sw_backend.Accuracy.predicted
      (Sw_backend.Accuracy.error row *. 100.0)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a kernel and compare against the model.")
    Term.(
      const run $ kernel_arg $ scale_arg $ cgs_arg $ grain_arg $ unroll_arg $ cpes_arg $ db_arg
      $ seed_arg $ faults_arg $ fault_level_arg)

let strategy_arg =
  let doc =
    "Search strategy: $(b,exhaustive) (assess every point), $(b,shortlist) (rank the space \
     with the static model, assess only the top $(b,--shortlist) points) or $(b,halving) \
     (successive halving over event budgets).  Pruned strategies cut tuning cost; the shortlist \
     returns the exhaustive argmin whenever the model ranks the true best into the top K."
  in
  Arg.(value & opt string "exhaustive" & info [ "strategy" ] ~docv:"STRATEGY" ~doc)

let shortlist_arg =
  let doc = "Shortlist size K for --strategy shortlist (0 = a quarter of the space)." in
  Arg.(value & opt int 0 & info [ "shortlist" ] ~docv:"K" ~doc)

let rungs_arg =
  let doc = "Number of budget rungs for --strategy halving." in
  Arg.(value & opt int 3 & info [ "rungs" ] ~docv:"N" ~doc)

let json_arg =
  let doc = "Print the outcome as a JSON object instead of the human summary." in
  Arg.(value & flag & info [ "json" ] ~doc)

let strategy_of name ~shortlist_k ~rungs ~n_points =
  match name with
  | "exhaustive" -> Sw_tuning.Search.exhaustive
  | "shortlist" ->
      let k = if shortlist_k > 0 then shortlist_k else Stdlib.max 1 (n_points / 4) in
      Sw_tuning.Search.shortlist ~k ()
  | "halving" | "successive-halving" -> Sw_tuning.Search.successive_halving ~rungs
  | s ->
      Printf.eprintf "swmodel: unknown strategy %S (available: exhaustive, shortlist, halving)\n"
        s;
      exit 1

let json_outcome (o : Sw_tuning.Tuner.outcome) =
  let b = o.Sw_tuning.Tuner.best in
  Printf.sprintf
    "{\"backend\": %S, \"strategy\": %S, \"best\": {\"grain\": %d, \"unroll\": %d, \
     \"active_cpes\": %d, \"double_buffer\": %b}, \"best_cycles\": %.6g, \"default_cycles\": \
     %.6g, \"speedup\": %.6g, \"tuning_host_s\": %.6g, \"tuning_cpu_s\": %.6g, \
     \"machine_time_us\": %.6g, \"evaluated\": %d, \"infeasible\": %d, \"pruned\": %d, \
     \"rank_host_s\": %.6g, \"rank_machine_us\": %.6g, \"journal_hits\": %d, \
     \"journal_misses\": %d}"
    o.Sw_tuning.Tuner.backend o.Sw_tuning.Tuner.strategy b.Sw_swacc.Kernel.grain
    b.Sw_swacc.Kernel.unroll b.Sw_swacc.Kernel.active_cpes b.Sw_swacc.Kernel.double_buffer
    o.Sw_tuning.Tuner.best_cycles o.Sw_tuning.Tuner.default_cycles o.Sw_tuning.Tuner.speedup
    o.Sw_tuning.Tuner.tuning_host_s o.Sw_tuning.Tuner.tuning_cpu_s
    o.Sw_tuning.Tuner.machine_time_us o.Sw_tuning.Tuner.evaluated o.Sw_tuning.Tuner.infeasible
    o.Sw_tuning.Tuner.points_pruned o.Sw_tuning.Tuner.rank_host_s
    o.Sw_tuning.Tuner.rank_machine_us o.Sw_tuning.Tuner.journal_hits
    o.Sw_tuning.Tuner.journal_misses

let checkpoint_arg =
  let doc =
    "Crash-safe tuning: journal every assessed point to $(docv) (append-only JSON lines, \
     flushed per point).  Rerunning with the same $(docv) after an interruption replays the \
     journaled points and reaches a bit-identical argmin without re-assessing them."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let robust_arg =
  let doc =
    "Robust tuning: after the shortlist pass, re-assess every surviving point under $(docv) \
     seeded fault plans (severity from --fault-level) and pick the min-of-worst-case variant \
     (0 = off)."
  in
  Arg.(value & opt int 0 & info [ "robust" ] ~docv:"SEEDS" ~doc)

let tune_cmd =
  let run name scale backend_name strategy_name shortlist_k rungs json domains trace seed faults
      fault_level checkpoint robust_seeds =
    let entry = Sw_workloads.Registry.find_exn name in
    let config = config_of Sw_arch.Params.default ~seed ~faults ~fault_level in
    let kernel = entry.Sw_workloads.Registry.build ~scale in
    let points =
      Sw_tuning.Space.enumerate ~grains:entry.Sw_workloads.Registry.grains
        ~unrolls:entry.Sw_workloads.Registry.unrolls ()
    in
    let n_points = List.length points in
    let strategy =
      if robust_seeds > 0 || strategy_name = "robust" then begin
        let n = if robust_seeds > 0 then robust_seeds else 8 in
        let k = if shortlist_k > 0 then shortlist_k else Stdlib.max 1 (n_points / 4) in
        Sw_tuning.Search.robust ~k
          ~seeds:(List.init n (fun i -> 1 + i))
          ~spec:(fault_spec_of fault_level) ()
      end
      else strategy_of strategy_name ~shortlist_k ~rungs ~n_points
    in
    let backend = backend_of_name backend_name in
    let sink = Option.map (fun _ -> Sw_obs.Sink.create ()) trace in
    match
      Sw_tuning.Tuner.tune ~backend ~strategy ?pool:(pool_of domains) ?obs:sink ?checkpoint
        config kernel ~points
    with
    | Ok outcome ->
        if json then print_endline (json_outcome outcome)
        else Format.printf "%a@." Sw_tuning.Tuner.pp_outcome outcome;
        Option.iter
          (fun path ->
            let sink = Option.get sink in
            (* one traced validation run of the winning variant gives
               the trace its machine timeline, reconciled against the
               simulator's own accounting *)
            let lowered =
              Sw_swacc.Lower.lower_exn config.Sw_sim.Config.params kernel
                outcome.Sw_tuning.Tuner.best
            in
            let metrics, tr =
              Sw_obs.Probe.run_traced sink ~name:("best:" ^ name) config
                lowered.Sw_swacc.Lowered.programs
            in
            (match Sw_obs.Probe.reconcile metrics tr with
            | Ok () -> ()
            | Error msg -> Printf.eprintf "swmodel: trace reconciliation failed: %s\n" msg);
            write_trace path sink)
          trace
    | Error (`No_feasible_point msg) ->
        Printf.eprintf "swmodel: %s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"Auto-tune a kernel's tile size and unroll factor under a cost backend.")
    Term.(
      const run $ kernel_arg $ scale_arg $ backend_arg $ strategy_arg $ shortlist_arg $ rungs_arg
      $ json_arg $ domains_arg $ trace_arg $ seed_arg $ faults_arg $ fault_level_arg
      $ checkpoint_arg $ robust_arg)

let fig6_cmd =
  let run scale domains =
    Sw_experiments.Fig6.print (Sw_experiments.Fig6.run ~scale ?pool:(pool_of domains) ())
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Reproduce Fig. 6: model accuracy over the suite.")
    Term.(const run $ scale_arg $ domains_arg)

let fig7_cmd =
  let run () =
    Sw_experiments.Fig7.print_a (Sw_experiments.Fig7.run_a ());
    print_newline ();
    Sw_experiments.Fig7.print_b (Sw_experiments.Fig7.run_b ())
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Reproduce Fig. 7: K-Means DMA granularity and partition sweeps.")
    Term.(const run $ const ())

let fig8_cmd =
  let run scale = Sw_experiments.Fig8.print (Sw_experiments.Fig8.run ~scale ()) in
  Cmd.v
    (Cmd.info "fig8" ~doc:"Reproduce Fig. 8: double-buffer benefit on N-body.")
    Term.(const run $ scale_arg)

let fig9_cmd =
  let run scale =
    let dyn = Sw_experiments.Fig9_10.run_dynamics ~scale () in
    let phys = Sw_experiments.Fig9_10.run_physics ~scale () in
    Sw_experiments.Fig9_10.print_fig9 dyn;
    print_newline ();
    Sw_experiments.Fig9_10.print_fig9 phys
  in
  Cmd.v
    (Cmd.info "fig9" ~doc:"Reproduce Fig. 9: WRF kernels vs #active_CPEs.")
    Term.(const run $ scale_arg)

let fig10_cmd =
  let run scale =
    let dyn = Sw_experiments.Fig9_10.run_dynamics ~scale () in
    let phys = Sw_experiments.Fig9_10.run_physics ~scale () in
    Sw_experiments.Fig9_10.print_fig10 dyn;
    print_newline ();
    Sw_experiments.Fig9_10.print_fig10 phys
  in
  Cmd.v
    (Cmd.info "fig10" ~doc:"Reproduce Fig. 10: WRF measured time breakdown.")
    Term.(const run $ scale_arg)

let table2_cmd =
  let run scale domains =
    Sw_experiments.Table2.print (Sw_experiments.Table2.run ~scale ?pool:(pool_of domains) ())
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Reproduce Table II: static vs empirical auto-tuning.")
    Term.(const run $ scale_arg $ domains_arg)

let asm_cmd =
  let run name scale grain unroll cpes db annotate cpe_index =
    let entry = Sw_workloads.Registry.find_exn name in
    let params = Sw_arch.Params.default in
    let lowered = lower_entry params entry scale (variant_of entry grain unroll cpes db) in
    let programs = lowered.Sw_swacc.Lowered.programs in
    if cpe_index < 0 || cpe_index >= Array.length programs then
      invalid_arg (Printf.sprintf "CPE %d out of range (0..%d)" cpe_index (Array.length programs - 1));
    let annotate = if annotate then Some params else None in
    print_string (Sw_isa.Asm.render_program ?annotate programs.(cpe_index))
  in
  let annotate_arg =
    Arg.(value & flag & info [ "annotate" ] ~doc:"Include predicted issue cycles and ILP.")
  in
  let cpe_index_arg =
    Arg.(value & opt int 0 & info [ "cpe" ] ~docv:"N" ~doc:"Which CPE's program to print.")
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Print a lowered kernel's CPE program as annotated assembly.")
    Term.(
      const run $ kernel_arg $ scale_arg $ grain_arg $ unroll_arg $ cpes_arg $ db_arg
      $ annotate_arg $ cpe_index_arg)

let timeline_cmd =
  let run name scale grain unroll cpes db trace_out seed faults fault_level =
    let entry = Sw_workloads.Registry.find_exn name in
    let config = config_of Sw_arch.Params.default ~seed ~faults ~fault_level in
    let lowered =
      lower_entry config.Sw_sim.Config.params entry scale (variant_of entry grain unroll cpes db)
    in
    let sink = Option.map (fun _ -> Sw_obs.Sink.create ()) trace_out in
    let metrics, trace =
      match sink with
      | Some s -> Sw_obs.Probe.run_traced s ~name config lowered.Sw_swacc.Lowered.programs
      | None -> Sw_sim.Engine.run_traced config lowered.Sw_swacc.Lowered.programs
    in
    print_string
      (Sw_sim.Trace.render ~width:100 ~max_cpes:16 ~makespan:metrics.Sw_sim.Metrics.cycles trace);
    Format.printf "makespan %a@." Sw_util.Units.pp_cycles metrics.Sw_sim.Metrics.cycles;
    if metrics.Sw_sim.Metrics.retries > 0 then
      Format.printf "dma retries %d (%.0f backoff cycles)@." metrics.Sw_sim.Metrics.retries
        metrics.Sw_sim.Metrics.backoff_cycles;
    Option.iter (fun path -> write_trace path (Option.get sink)) trace_out
  in
  Cmd.v
    (Cmd.info "timeline" ~doc:"Render a simulated per-CPE activity timeline (Fig. 4 style).")
    Term.(
      const run $ kernel_arg $ scale_arg $ grain_arg $ unroll_arg $ cpes_arg $ db_arg $ trace_arg
      $ seed_arg $ faults_arg $ fault_level_arg)

let ablation_cmd =
  let run scale = Sw_experiments.Ablation_study.print (Sw_experiments.Ablation_study.run ~scale ()) in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Measure the accuracy cost of each modeling ingredient.")
    Term.(const run $ scale_arg)

let compare_cmd =
  let run scale =
    Sw_experiments.Model_comparison.print_suite (Sw_experiments.Model_comparison.run_suite ~scale ());
    print_newline ();
    Sw_experiments.Model_comparison.print_sweep (Sw_experiments.Model_comparison.run_fig7_sweep ())
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare the paper's model against Roofline.")
    Term.(const run $ scale_arg)

let sensitivity_cmd =
  let run () = Sw_experiments.Input_sensitivity.print (Sw_experiments.Input_sensitivity.run ()) in
  Cmd.v
    (Cmd.info "sensitivity" ~doc:"Model error across input scales (Section V-D).")
    Term.(const run $ const ())

let gflops_cmd =
  let run scale = Sw_experiments.Gflops.print (Sw_experiments.Gflops.run ~scale ()) in
  Cmd.v
    (Cmd.info "gflops" ~doc:"Achieved GFlops: hand-picked vs statically tuned variants.")
    Term.(const run $ scale_arg)

let coalescing_cmd =
  let run scale = Sw_experiments.Coalescing.print (Sw_experiments.Coalescing.run ~scale ()) in
  Cmd.v
    (Cmd.info "coalescing" ~doc:"Gload coalescing on the irregular kernels.")
    Term.(const run $ scale_arg)

let robustness_cmd =
  let run scale domains seeds fault_level csv_out =
    let rows =
      Sw_experiments.Robustness_study.run ~scale ?pool:(pool_of domains) ~seeds
        ~spec:(fault_spec_of fault_level) ()
    in
    Sw_experiments.Robustness_study.print rows;
    match csv_out with
    | Some path ->
        Sw_util.Csv.save (Sw_experiments.Robustness_study.csv rows) path;
        Printf.printf "wrote %s\n" path
    | None -> ()
  in
  let seeds_arg =
    Arg.(
      value & opt int 8
      & info [ "seeds" ] ~docv:"N" ~doc:"Fault plans (seeds) to assess each kernel under.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "o"; "csv" ] ~docv:"FILE" ~doc:"Write rows as CSV.")
  in
  Cmd.v
    (Cmd.info "robustness"
       ~doc:"Argmin survival under fault plans: nominal vs min-of-worst-case tuning.")
    Term.(const run $ scale_arg $ domains_arg $ seeds_arg $ fault_level_arg $ csv_arg)

let csv_out_arg =
  let doc = "Write the sweep as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "csv" ] ~docv:"FILE" ~doc)

let sweep_cmd =
  let run name scale what csv_out =
    let entry = Sw_workloads.Registry.find_exn name in
    let params = Sw_arch.Params.default in
    let config = Sw_sim.Config.default params in
    let kernel = entry.Sw_workloads.Registry.build ~scale in
    let base = entry.Sw_workloads.Registry.variant in
    let points =
      match what with
      | "grain" ->
          List.map
            (fun g -> (g, { base with Sw_swacc.Kernel.grain = g }))
            entry.Sw_workloads.Registry.grains
      | "unroll" ->
          List.map
            (fun u -> (u, { base with Sw_swacc.Kernel.unroll = u }))
            entry.Sw_workloads.Registry.unrolls
      | "cpes" ->
          List.map
            (fun c -> (c, { base with Sw_swacc.Kernel.active_cpes = c }))
            [ 8; 16; 32; 48; 64 ]
      | other -> invalid_arg (Printf.sprintf "unknown sweep %S (grain|unroll|cpes)" other)
    in
    let doc = Sw_util.Csv.create [ what; "measured_cycles"; "predicted_cycles"; "error" ] in
    let t =
      Sw_util.Table.create
        ~title:(Printf.sprintf "%s sweep over %s" what name)
        [
          (what, Sw_util.Table.Right);
          ("measured", Sw_util.Table.Right);
          ("predicted", Sw_util.Table.Right);
          ("error", Sw_util.Table.Right);
        ]
    in
    List.iter
      (fun (x, variant) ->
        match Sw_swacc.Lower.lower params kernel variant with
        | Error msg -> Sw_util.Table.add_row t [ string_of_int x; "infeasible: " ^ msg; ""; "" ]
        | Ok lowered ->
            let row = Sw_backend.Accuracy.evaluate config lowered in
            let meas = row.Sw_backend.Accuracy.measured.Sw_sim.Metrics.cycles in
            let pred = row.Sw_backend.Accuracy.predicted.Swpm.Predict.t_total in
            Sw_util.Csv.add_floats doc
              [ float_of_int x; meas; pred; Sw_backend.Accuracy.error row ];
            Sw_util.Table.add_row t
              [
                string_of_int x;
                Sw_util.Table.cell_f meas;
                Sw_util.Table.cell_f pred;
                Sw_util.Table.cell_pct (Sw_backend.Accuracy.error row);
              ])
      points;
    Sw_util.Table.print t;
    match csv_out with
    | Some path ->
        Sw_util.Csv.save doc path;
        Printf.printf "wrote %s
" path
    | None -> ()
  in
  let what_arg =
    Arg.(value & opt string "grain" & info [ "over" ] ~docv:"DIM" ~doc:"grain, unroll or cpes")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep one tuning dimension, printing measured vs predicted.")
    Term.(const run $ kernel_arg $ scale_arg $ what_arg $ csv_out_arg)

let main =
  let info = Cmd.info "swmodel" ~doc:"SW26010 static performance model and auto-tuner." in
  Cmd.group info
    [
      list_cmd;
      table1_cmd;
      predict_cmd;
      simulate_cmd;
      tune_cmd;
      fig6_cmd;
      fig7_cmd;
      fig8_cmd;
      fig9_cmd;
      fig10_cmd;
      table2_cmd;
      asm_cmd;
      timeline_cmd;
      ablation_cmd;
      compare_cmd;
      sensitivity_cmd;
      gflops_cmd;
      coalescing_cmd;
      robustness_cmd;
      sweep_cmd;
    ]

let () = exit (Cmd.eval main)
