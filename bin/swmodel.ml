(* swmodel: command-line front end.

   Predict, simulate and tune SWACC kernels on the simulated SW26010,
   and regenerate the paper's experiments. *)

open Cmdliner

let scale_arg =
  let doc = "Workload scale factor (1.0 = default evaluation size)." in
  Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let kernel_arg =
  let doc = "Kernel name (see $(b,swmodel list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let cgs_arg =
  let doc = "Core groups to use (1-4)." in
  Arg.(value & opt int 1 & info [ "cgs" ] ~docv:"N" ~doc)

let grain_arg =
  let doc = "Copy granularity in elements (the tile intrinsic)." in
  Arg.(value & opt (some int) None & info [ "grain" ] ~docv:"G" ~doc)

let unroll_arg =
  let doc = "Loop unroll factor." in
  Arg.(value & opt (some int) None & info [ "unroll" ] ~docv:"U" ~doc)

let cpes_arg =
  let doc = "Active CPEs." in
  Arg.(value & opt (some int) None & info [ "cpes" ] ~docv:"N" ~doc)

let db_arg =
  let doc = "Enable double buffering." in
  Arg.(value & flag & info [ "double-buffer" ] ~doc)

let domains_arg =
  let doc =
    "Assess work on $(docv) OCaml domains (0 = auto: \\$SWPM_DOMAINS or the host's recommended \
     count minus one).  Results are identical to a sequential run."
  in
  Arg.(value & opt (some int) None & info [ "j"; "domains" ] ~docv:"N" ~doc)

let pool_of domains =
  match domains with
  | None -> None
  | Some 0 -> Some (Sw_util.Pool.create ())
  | Some n -> Some (Sw_util.Pool.create ~size:n ())

let params_of_cgs cgs = Sw_arch.Params.with_cgs Sw_arch.Params.default cgs

let seed_arg =
  let doc =
    "Process-wide PRNG seed: the simulator's start jitter and every fault plan derive from it, \
     so two runs with the same seed are bit-identical."
  in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let faults_arg =
  let doc =
    "Inject deterministic faults planned from $(docv): jittered latency/bandwidth, transient \
     DMA failures (modeled retry + exponential backoff), straggler CPEs and throttled memory \
     controllers.  Same seed, same faults."
  in
  Arg.(value & opt (some int) None & info [ "faults" ] ~docv:"SEED" ~doc)

let fault_level_arg =
  let doc = "Fault severity for --faults: $(b,none), $(b,mild) or $(b,harsh)." in
  Arg.(value & opt string "mild" & info [ "fault-level" ] ~docv:"LEVEL" ~doc)

let fault_spec_of level =
  match Sw_fault.Fault.of_string level with
  | Some spec -> spec
  | None ->
      Printf.eprintf "swmodel: unknown fault level %S (available: none, mild, harsh)\n" level;
      exit 1

(* --seed sets the process-wide default and reseeds the simulator's
   start jitter; --faults then perturbs the configuration itself *)
let config_of params ~seed ~faults ~fault_level =
  Option.iter Sw_util.Prng.set_global_seed seed;
  let config =
    { (Sw_sim.Config.default params) with Sw_sim.Config.seed = Sw_util.Prng.global_seed () }
  in
  match faults with
  | None -> config
  | Some fseed -> Sw_fault.Fault.plan ~spec:(fault_spec_of fault_level) ~seed:fseed config

let backend_arg =
  let doc =
    "Cost backend: $(b,model) (static model), $(b,sim) (cycle-level simulator), $(b,hybrid) \
     (model + one profile), $(b,roofline) or $(b,surrogate) (learned ridge regressor fitted on \
     simulator-labelled samples).  Aliases: static, static-model, empirical, simulator."
  in
  Arg.(value & opt string "model" & info [ "backend"; "method" ] ~docv:"BACKEND" ~doc)

let json_arg =
  let doc = "Print the outcome as a JSON object instead of the human summary." in
  Arg.(value & flag & info [ "json" ] ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON file of this run's telemetry to $(docv) — load it at \
     chrome://tracing or https://ui.perfetto.dev.  Machine tracks tick in simulated cycles, \
     host tracks in wall-clock microseconds; results are unchanged by tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* write the sink out and tell the user what landed in it *)
let write_trace path sink =
  Sw_obs.Chrome.write path sink;
  Printf.printf "wrote %s (%d spans, %d counters)\n" path (Sw_obs.Sink.span_count sink)
    (List.length (Sw_obs.Sink.counters sink))

let variant_of entry grain unroll cpes db =
  let base = entry.Sw_workloads.Registry.variant in
  {
    Sw_swacc.Kernel.grain = Option.value grain ~default:base.Sw_swacc.Kernel.grain;
    unroll = Option.value unroll ~default:base.Sw_swacc.Kernel.unroll;
    active_cpes = Option.value cpes ~default:base.Sw_swacc.Kernel.active_cpes;
    double_buffer = db || base.Sw_swacc.Kernel.double_buffer;
  }

let lower_entry params entry scale variant =
  let kernel = entry.Sw_workloads.Registry.build ~scale in
  Sw_swacc.Lower.lower_exn params kernel variant

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Sw_workloads.Registry.entry) ->
        Printf.printf "%-14s %-9s %s\n" e.name
          (match e.kind with Sw_workloads.Registry.Regular -> "regular" | Irregular -> "irregular")
          e.description)
      Sw_workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available kernels.") Term.(const run $ const ())

let table1_cmd =
  let run () = Format.printf "%a@." Sw_arch.Params.pp Sw_arch.Params.default in
  Cmd.v (Cmd.info "table1" ~doc:"Print the Table I machine parameters.") Term.(const run $ const ())

(* predict/tune/timeline delegate to Sw_serve.Handler — the same code
   path the daemon runs, so `--json` output here is bit-identical to a
   serve response's "result" for the same request *)
let handler_error msg =
  Printf.eprintf "swmodel: %s\n" msg;
  exit 1

let predict_cmd =
  let run name scale cgs grain unroll cpes db backend_name trace seed faults fault_level json =
    Option.iter Sw_util.Prng.set_global_seed seed;
    let req =
      {
        (Sw_serve.Handler.predict_defaults ~kernel:name) with
        Sw_serve.Handler.p_scale = scale;
        p_cgs = cgs;
        p_grain = grain;
        p_unroll = unroll;
        p_cpes = cpes;
        p_db = db;
        p_backend = backend_name;
        p_seed = seed;
        p_faults = faults;
        p_fault_level = fault_level;
      }
    in
    match (backend_name, trace, faults, json) with
    | ("model" | "static" | "static-model"), None, None, false ->
        let entry = Sw_workloads.Registry.find_exn name in
        let params = params_of_cgs cgs in
        let lowered = lower_entry params entry scale (variant_of entry grain unroll cpes db) in
        Format.printf "%a@.@.%a@." Sw_swacc.Lowered.pp_summary lowered.Sw_swacc.Lowered.summary
          Swpm.Predict.pp
          (Swpm.Predict.predict_lowered params lowered)
    | _ -> (
        let sink = Option.map (fun _ -> Sw_obs.Sink.create ()) trace in
        let state = Sw_serve.Handler.create () in
        match Sw_serve.Handler.predict state ?obs:sink req with
        | Error msg -> handler_error msg
        | Ok pr ->
            let v = pr.Sw_serve.Handler.pr_verdict in
            if json then
              print_endline (Sw_obs.Json.to_string (Sw_serve.Handler.predict_payload req pr))
            else begin
              (match v.Sw_backend.Backend.breakdown with
              | Some p -> Format.printf "%a@.@." Swpm.Predict.pp p
              | None -> ());
              Format.printf "%s: %.0f cycles (host %.3f s, machine %.0f us)@."
                pr.Sw_serve.Handler.pr_backend v.Sw_backend.Backend.cycles
                v.Sw_backend.Backend.cost.Sw_backend.Backend.host_wall_s
                v.Sw_backend.Backend.cost.Sw_backend.Backend.machine_us
            end;
            Option.iter (fun path -> write_trace path (Option.get sink)) trace)
  in
  Cmd.v
    (Cmd.info "predict" ~doc:"Price a kernel variant through a cost backend (default: the model).")
    Term.(
      const run $ kernel_arg $ scale_arg $ cgs_arg $ grain_arg $ unroll_arg $ cpes_arg $ db_arg
      $ backend_arg $ trace_arg $ seed_arg $ faults_arg $ fault_level_arg $ json_arg)

let simulate_cmd =
  let run name scale cgs grain unroll cpes db seed faults fault_level =
    let entry = Sw_workloads.Registry.find_exn name in
    let params = params_of_cgs cgs in
    let config = config_of params ~seed ~faults ~fault_level in
    let lowered =
      lower_entry config.Sw_sim.Config.params entry scale (variant_of entry grain unroll cpes db)
    in
    let row = Sw_backend.Accuracy.evaluate config lowered in
    Format.printf "%a@.@.Prediction:@.%a@.@.error: %.1f%%@." Sw_sim.Metrics.pp
      row.Sw_backend.Accuracy.measured Swpm.Predict.pp row.Sw_backend.Accuracy.predicted
      (Sw_backend.Accuracy.error row *. 100.0)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a kernel and compare against the model.")
    Term.(
      const run $ kernel_arg $ scale_arg $ cgs_arg $ grain_arg $ unroll_arg $ cpes_arg $ db_arg
      $ seed_arg $ faults_arg $ fault_level_arg)

let strategy_arg =
  let doc =
    "Search strategy: $(b,exhaustive) (assess every point), $(b,shortlist) (rank the space \
     with the $(b,--rank) backend, assess only the top $(b,--shortlist) points), \
     $(b,adaptive) (shortlist whose K doubles until the incumbent survives a whole rung) or \
     $(b,halving) (successive halving over event budgets).  Pruned strategies cut tuning cost; \
     the shortlist returns the exhaustive argmin whenever the ranker places the true best \
     into the top K."
  in
  Arg.(value & opt string "exhaustive" & info [ "strategy" ] ~docv:"STRATEGY" ~doc)

let rank_arg =
  let doc =
    "Ranking backend for $(b,--strategy) shortlist/adaptive/robust: any backend name \
     (e.g. $(b,surrogate) for the learned ranker); default the static model."
  in
  Arg.(value & opt (some string) None & info [ "rank" ] ~docv:"BACKEND" ~doc)

let shortlist_arg =
  let doc = "Shortlist size K for --strategy shortlist (0 = a quarter of the space)." in
  Arg.(value & opt int 0 & info [ "shortlist" ] ~docv:"K" ~doc)

let rungs_arg =
  let doc = "Number of budget rungs for --strategy halving." in
  Arg.(value & opt int 3 & info [ "rungs" ] ~docv:"N" ~doc)

let checkpoint_arg =
  let doc =
    "Crash-safe tuning: journal every assessed point to $(docv) (append-only JSON lines, \
     flushed per point).  Rerunning with the same $(docv) after an interruption replays the \
     journaled points and reaches a bit-identical argmin without re-assessing them."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let robust_arg =
  let doc =
    "Robust tuning: after the shortlist pass, re-assess every surviving point under $(docv) \
     seeded fault plans (severity from --fault-level) and pick the min-of-worst-case variant \
     (0 = off)."
  in
  Arg.(value & opt int 0 & info [ "robust" ] ~docv:"SEEDS" ~doc)

let workers_arg =
  let doc =
    "Sharded tuning: partition the space across $(docv) worker processes (by a stable hash of \
     the variant key), each journaling its shard and pruning against the global incumbent; the \
     coordinator merges the journals and returns the single-process argmin.  With --checkpoint \
     the per-shard journals persist as FILE.shard<i>of<N>, so a killed run resumes."
  in
  Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc)

let max_restarts_arg =
  let doc =
    "Sharded tuning: relaunch a crashed (or hung, see --hang-timeout) worker up to $(docv) \
     times per shard, resuming from its journal to a bit-identical argmin.  A shard that \
     exhausts the budget is quarantined: the tune completes as a partial argmin over the \
     surviving shards and reports the quarantined shard numbers."
  in
  Arg.(value & opt int 2 & info [ "max-restarts" ] ~docv:"N" ~doc)

let hang_timeout_arg =
  let doc =
    "Sharded tuning: a worker whose link stays silent for $(docv) seconds (workers heartbeat \
     every 0.25s) is presumed hung, killed and relaunched under the --max-restarts budget \
     (0 = no hang detection)."
  in
  Arg.(value & opt float 0.0 & info [ "hang-timeout" ] ~docv:"SECS" ~doc)

let grains_arg =
  let doc =
    "Override the kernel's grain axis: $(b,lo..hi), $(b,lo..hi:step) or a comma list \
     $(b,a,b,c)."
  in
  Arg.(value & opt (some string) None & info [ "grains" ] ~docv:"AXIS" ~doc)

let unrolls_arg =
  let doc = "Override the kernel's unroll axis (same syntax as --grains)." in
  Arg.(value & opt (some string) None & info [ "unrolls" ] ~docv:"AXIS" ~doc)

let db_both_arg =
  let doc = "Search both double-buffer settings instead of only off." in
  Arg.(value & flag & info [ "db-both" ] ~doc)

let tune_cmd =
  let run name scale backend_name strategy_name rank shortlist_k rungs json domains trace seed
      faults fault_level checkpoint robust_seeds workers max_restarts hang_timeout grains
      unrolls db_both =
    Option.iter Sw_util.Prng.set_global_seed seed;
    let req =
      {
        (Sw_serve.Handler.tune_defaults ~kernel:name) with
        Sw_serve.Handler.t_scale = scale;
        t_backend = backend_name;
        t_strategy = strategy_name;
        t_rank = rank;
        t_shortlist = shortlist_k;
        t_rungs = rungs;
        t_robust = robust_seeds;
        t_seed = seed;
        t_faults = faults;
        t_fault_level = fault_level;
        t_checkpoint = checkpoint;
        t_workers = workers;
        t_max_restarts = max_restarts;
        t_hang_timeout_s = (if hang_timeout > 0.0 then Some hang_timeout else None);
        t_grains = grains;
        t_unrolls = unrolls;
        t_db_both = db_both;
      }
    in
    let sink = Option.map (fun _ -> Sw_obs.Sink.create ()) trace in
    let state = Sw_serve.Handler.create () in
    match Sw_serve.Handler.tune state ?pool:(pool_of domains) ?obs:sink req with
    | Error msg -> handler_error msg
    | Ok tr ->
        let outcome = tr.Sw_serve.Handler.tr_outcome in
        if json then
          print_endline (Sw_obs.Json.to_string (Sw_serve.Handler.tune_payload req tr))
        else
          Format.printf "%a@." Sw_tuning.Tuner.pp_outcome
            { outcome with Sw_tuning.Tuner.backend = tr.Sw_serve.Handler.tr_backend };
        Option.iter
          (fun path ->
            let sink = Option.get sink in
            (* one traced validation run of the winning variant gives
               the trace its machine timeline, reconciled against the
               simulator's own accounting *)
            let config =
              match Sw_serve.Handler.tune_config req with
              | Ok config -> config
              | Error msg -> handler_error msg
            in
            let entry = Sw_workloads.Registry.find_exn name in
            let kernel = entry.Sw_workloads.Registry.build ~scale in
            let lowered =
              Sw_swacc.Lower.lower_exn config.Sw_sim.Config.params kernel
                outcome.Sw_tuning.Tuner.best
            in
            let metrics, tr =
              Sw_obs.Probe.run_traced sink ~name:("best:" ^ name) config
                lowered.Sw_swacc.Lowered.programs
            in
            (match Sw_obs.Probe.reconcile metrics tr with
            | Ok () -> ()
            | Error msg -> Printf.eprintf "swmodel: trace reconciliation failed: %s\n" msg);
            write_trace path sink)
          trace
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"Auto-tune a kernel's tile size and unroll factor under a cost backend.")
    Term.(
      const run $ kernel_arg $ scale_arg $ backend_arg $ strategy_arg $ rank_arg $ shortlist_arg
      $ rungs_arg $ json_arg $ domains_arg $ trace_arg $ seed_arg $ faults_arg $ fault_level_arg
      $ checkpoint_arg $ robust_arg $ workers_arg $ max_restarts_arg $ hang_timeout_arg
      $ grains_arg $ unrolls_arg $ db_both_arg)

let shard_worker_cmd =
  let run spec =
    match Sw_serve.Handler.worker_main spec with
    | Ok () -> ()
    | Error msg ->
        Printf.eprintf "swmodel shard-worker: %s\n%!" msg;
        exit 1
  in
  let spec_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "spec" ] ~docv:"JSON" ~doc:"Worker spec built by the coordinating tune.")
  in
  Cmd.v
    (Cmd.info "shard-worker"
       ~doc:
         "Internal: one shard of a sharded tune.  Launched by $(b,tune --workers N); searches \
          its shard with the cutoff link on stdin/stdout and journals every resolved point."
       ~docs:Cmdliner.Manpage.s_none)
    Term.(const run $ spec_arg)

let fig6_cmd =
  let run scale domains =
    Sw_experiments.Fig6.print (Sw_experiments.Fig6.run ~scale ?pool:(pool_of domains) ())
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Reproduce Fig. 6: model accuracy over the suite.")
    Term.(const run $ scale_arg $ domains_arg)

let fig7_cmd =
  let run () =
    Sw_experiments.Fig7.print_a (Sw_experiments.Fig7.run_a ());
    print_newline ();
    Sw_experiments.Fig7.print_b (Sw_experiments.Fig7.run_b ())
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Reproduce Fig. 7: K-Means DMA granularity and partition sweeps.")
    Term.(const run $ const ())

let fig8_cmd =
  let run scale = Sw_experiments.Fig8.print (Sw_experiments.Fig8.run ~scale ()) in
  Cmd.v
    (Cmd.info "fig8" ~doc:"Reproduce Fig. 8: double-buffer benefit on N-body.")
    Term.(const run $ scale_arg)

let fig9_cmd =
  let run scale =
    let dyn = Sw_experiments.Fig9_10.run_dynamics ~scale () in
    let phys = Sw_experiments.Fig9_10.run_physics ~scale () in
    Sw_experiments.Fig9_10.print_fig9 dyn;
    print_newline ();
    Sw_experiments.Fig9_10.print_fig9 phys
  in
  Cmd.v
    (Cmd.info "fig9" ~doc:"Reproduce Fig. 9: WRF kernels vs #active_CPEs.")
    Term.(const run $ scale_arg)

let fig10_cmd =
  let run scale =
    let dyn = Sw_experiments.Fig9_10.run_dynamics ~scale () in
    let phys = Sw_experiments.Fig9_10.run_physics ~scale () in
    Sw_experiments.Fig9_10.print_fig10 dyn;
    print_newline ();
    Sw_experiments.Fig9_10.print_fig10 phys
  in
  Cmd.v
    (Cmd.info "fig10" ~doc:"Reproduce Fig. 10: WRF measured time breakdown.")
    Term.(const run $ scale_arg)

let table2_cmd =
  let run scale domains =
    Sw_experiments.Table2.print (Sw_experiments.Table2.run ~scale ?pool:(pool_of domains) ())
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Reproduce Table II: static vs empirical auto-tuning.")
    Term.(const run $ scale_arg $ domains_arg)

let asm_cmd =
  let run name scale grain unroll cpes db annotate cpe_index =
    let entry = Sw_workloads.Registry.find_exn name in
    let params = Sw_arch.Params.default in
    let lowered = lower_entry params entry scale (variant_of entry grain unroll cpes db) in
    let programs = lowered.Sw_swacc.Lowered.programs in
    if cpe_index < 0 || cpe_index >= Array.length programs then
      invalid_arg (Printf.sprintf "CPE %d out of range (0..%d)" cpe_index (Array.length programs - 1));
    let annotate = if annotate then Some params else None in
    print_string (Sw_isa.Asm.render_program ?annotate programs.(cpe_index))
  in
  let annotate_arg =
    Arg.(value & flag & info [ "annotate" ] ~doc:"Include predicted issue cycles and ILP.")
  in
  let cpe_index_arg =
    Arg.(value & opt int 0 & info [ "cpe" ] ~docv:"N" ~doc:"Which CPE's program to print.")
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Print a lowered kernel's CPE program as annotated assembly.")
    Term.(
      const run $ kernel_arg $ scale_arg $ grain_arg $ unroll_arg $ cpes_arg $ db_arg
      $ annotate_arg $ cpe_index_arg)

let timeline_cmd =
  let run name scale grain unroll cpes db trace_out seed faults fault_level json =
    Option.iter Sw_util.Prng.set_global_seed seed;
    let req =
      {
        (Sw_serve.Handler.timeline_defaults ~kernel:name) with
        Sw_serve.Handler.l_scale = scale;
        l_grain = grain;
        l_unroll = unroll;
        l_cpes = cpes;
        l_db = db;
        l_seed = seed;
        l_faults = faults;
        l_fault_level = fault_level;
      }
    in
    let sink = Option.map (fun _ -> Sw_obs.Sink.create ()) trace_out in
    let state = Sw_serve.Handler.create () in
    match Sw_serve.Handler.timeline state ?obs:sink req with
    | Error msg -> handler_error msg
    | Ok (metrics, trace) ->
        if json then
          print_endline
            (Sw_obs.Json.to_string (Sw_serve.Handler.timeline_payload req metrics trace))
        else begin
          print_string
            (Sw_sim.Trace.render ~width:100 ~max_cpes:16 ~makespan:metrics.Sw_sim.Metrics.cycles
               trace);
          Format.printf "makespan %a@." Sw_util.Units.pp_cycles metrics.Sw_sim.Metrics.cycles;
          if metrics.Sw_sim.Metrics.retries > 0 then
            Format.printf "dma retries %d (%.0f backoff cycles)@." metrics.Sw_sim.Metrics.retries
              metrics.Sw_sim.Metrics.backoff_cycles
        end;
        Option.iter (fun path -> write_trace path (Option.get sink)) trace_out
  in
  Cmd.v
    (Cmd.info "timeline" ~doc:"Render a simulated per-CPE activity timeline (Fig. 4 style).")
    Term.(
      const run $ kernel_arg $ scale_arg $ grain_arg $ unroll_arg $ cpes_arg $ db_arg $ trace_arg
      $ seed_arg $ faults_arg $ fault_level_arg $ json_arg)

let ablation_cmd =
  let run scale = Sw_experiments.Ablation_study.print (Sw_experiments.Ablation_study.run ~scale ()) in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Measure the accuracy cost of each modeling ingredient.")
    Term.(const run $ scale_arg)

let compare_cmd =
  let run scale =
    Sw_experiments.Model_comparison.print_suite (Sw_experiments.Model_comparison.run_suite ~scale ());
    print_newline ();
    Sw_experiments.Model_comparison.print_sweep (Sw_experiments.Model_comparison.run_fig7_sweep ())
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare the paper's model against Roofline.")
    Term.(const run $ scale_arg)

let sensitivity_cmd =
  let run () = Sw_experiments.Input_sensitivity.print (Sw_experiments.Input_sensitivity.run ()) in
  Cmd.v
    (Cmd.info "sensitivity" ~doc:"Model error across input scales (Section V-D).")
    Term.(const run $ const ())

let gflops_cmd =
  let run scale = Sw_experiments.Gflops.print (Sw_experiments.Gflops.run ~scale ()) in
  Cmd.v
    (Cmd.info "gflops" ~doc:"Achieved GFlops: hand-picked vs statically tuned variants.")
    Term.(const run $ scale_arg)

let coalescing_cmd =
  let run scale = Sw_experiments.Coalescing.print (Sw_experiments.Coalescing.run ~scale ()) in
  Cmd.v
    (Cmd.info "coalescing" ~doc:"Gload coalescing on the irregular kernels.")
    Term.(const run $ scale_arg)

let calibrate_cmd =
  let run scale sweeps =
    Sw_experiments.Calibration_study.print
      (Sw_experiments.Calibration_study.run ~scale ~sweeps ())
  in
  let sweeps_arg =
    Arg.(
      value & opt int 3
      & info [ "sweeps" ] ~docv:"N" ~doc:"Coordinate-descent sweeps over the parameter set.")
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:
         "Calibration study: recover perturbed simulator parameters (latency, bandwidth) from \
          measured cycles alone, DiffTune-style.")
    Term.(const run $ scale_arg $ sweeps_arg)

let robustness_cmd =
  let run scale domains seeds fault_level csv_out =
    let rows =
      Sw_experiments.Robustness_study.run ~scale ?pool:(pool_of domains) ~seeds
        ~spec:(fault_spec_of fault_level) ()
    in
    Sw_experiments.Robustness_study.print rows;
    match csv_out with
    | Some path ->
        Sw_util.Csv.save (Sw_experiments.Robustness_study.csv rows) path;
        Printf.printf "wrote %s\n" path
    | None -> ()
  in
  let seeds_arg =
    Arg.(
      value & opt int 8
      & info [ "seeds" ] ~docv:"N" ~doc:"Fault plans (seeds) to assess each kernel under.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "o"; "csv" ] ~docv:"FILE" ~doc:"Write rows as CSV.")
  in
  Cmd.v
    (Cmd.info "robustness"
       ~doc:"Argmin survival under fault plans: nominal vs min-of-worst-case tuning.")
    Term.(const run $ scale_arg $ domains_arg $ seeds_arg $ fault_level_arg $ csv_arg)

let csv_out_arg =
  let doc = "Write the sweep as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "csv" ] ~docv:"FILE" ~doc)

let sweep_cmd =
  let run name scale what csv_out =
    let entry = Sw_workloads.Registry.find_exn name in
    let params = Sw_arch.Params.default in
    let config = Sw_sim.Config.default params in
    let kernel = entry.Sw_workloads.Registry.build ~scale in
    let base = entry.Sw_workloads.Registry.variant in
    let points =
      match what with
      | "grain" ->
          List.map
            (fun g -> (g, { base with Sw_swacc.Kernel.grain = g }))
            entry.Sw_workloads.Registry.grains
      | "unroll" ->
          List.map
            (fun u -> (u, { base with Sw_swacc.Kernel.unroll = u }))
            entry.Sw_workloads.Registry.unrolls
      | "cpes" ->
          List.map
            (fun c -> (c, { base with Sw_swacc.Kernel.active_cpes = c }))
            [ 8; 16; 32; 48; 64 ]
      | other -> invalid_arg (Printf.sprintf "unknown sweep %S (grain|unroll|cpes)" other)
    in
    let doc = Sw_util.Csv.create [ what; "measured_cycles"; "predicted_cycles"; "error" ] in
    let t =
      Sw_util.Table.create
        ~title:(Printf.sprintf "%s sweep over %s" what name)
        [
          (what, Sw_util.Table.Right);
          ("measured", Sw_util.Table.Right);
          ("predicted", Sw_util.Table.Right);
          ("error", Sw_util.Table.Right);
        ]
    in
    List.iter
      (fun (x, variant) ->
        match Sw_swacc.Lower.lower params kernel variant with
        | Error msg -> Sw_util.Table.add_row t [ string_of_int x; "infeasible: " ^ msg; ""; "" ]
        | Ok lowered ->
            let row = Sw_backend.Accuracy.evaluate config lowered in
            let meas = row.Sw_backend.Accuracy.measured.Sw_sim.Metrics.cycles in
            let pred = row.Sw_backend.Accuracy.predicted.Swpm.Predict.t_total in
            Sw_util.Csv.add_floats doc
              [ float_of_int x; meas; pred; Sw_backend.Accuracy.error row ];
            Sw_util.Table.add_row t
              [
                string_of_int x;
                Sw_util.Table.cell_f meas;
                Sw_util.Table.cell_f pred;
                Sw_util.Table.cell_pct (Sw_backend.Accuracy.error row);
              ])
      points;
    Sw_util.Table.print t;
    match csv_out with
    | Some path ->
        Sw_util.Csv.save doc path;
        Printf.printf "wrote %s
" path
    | None -> ()
  in
  let what_arg =
    Arg.(value & opt string "grain" & info [ "over" ] ~docv:"DIM" ~doc:"grain, unroll or cpes")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep one tuning dimension, printing measured vs predicted.")
    Term.(const run $ kernel_arg $ scale_arg $ what_arg $ csv_out_arg)

let serve_cmd =
  let run socket state_dir queue watermark metrics_every sim_timeout domains =
    let state = Sw_serve.Handler.create ?state_dir ?sim_timeout_s:sim_timeout () in
    let pool = pool_of domains in
    let config =
      {
        Sw_serve.Server.queue_capacity = queue;
        shed_watermark = watermark;
        metrics_every;
      }
    in
    let stats =
      match socket with
      | Some path -> Sw_serve.Server.serve_socket ~config ?pool state ~path
      | None -> Sw_serve.Server.serve ~config ?pool state ~input:Unix.stdin ~output:stdout
    in
    Printf.eprintf
      "swmodel serve: %d served (%d degraded, %d errors, %d resumed) in %d batches (deepest %d)\n"
      stats.Sw_serve.Server.served stats.Sw_serve.Server.degraded stats.Sw_serve.Server.errors
      stats.Sw_serve.Server.resumed stats.Sw_serve.Server.batches stats.Sw_serve.Server.max_batch
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv) instead of stdin/stdout.")
  in
  let state_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state" ] ~docv:"DIR"
          ~doc:
            "Crash recovery: log accepted requests under $(docv) and auto-checkpoint in-flight \
             tunes there; on restart, interrupted requests are replayed (responses marked \
             $(b,resumed)) and interrupted tunes resume from their journals.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N" ~doc:"Bounded request queue: at most $(docv) requests per batch.")
  in
  let watermark_arg =
    Arg.(
      value & opt int 8
      & info [ "watermark" ] ~docv:"N"
          ~doc:
            "Overload shedding: tune requests queued at or past position $(docv) in a batch are \
             answered by model-only shortlist scoring and marked $(b,degraded).")
  in
  let metrics_every_arg =
    Arg.(
      value & opt int 0
      & info [ "metrics-every" ] ~docv:"N"
          ~doc:"Dump Prometheus-style metrics to stderr every $(docv) responses (0 = never).")
  in
  let sim_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "sim-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Degrade predict requests whose simulation exceeds $(docv) host seconds to the \
             static model (responses marked $(b,degraded)).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the tuning-as-a-service daemon: line-delimited JSON requests (predict, tune, \
          timeline, ping, metrics, shutdown) in, one JSON response line out per request.")
    Term.(
      const run $ socket_arg $ state_arg $ queue_arg $ watermark_arg $ metrics_every_arg
      $ sim_timeout_arg $ domains_arg)

let metrics_cmd =
  let run trace =
    match trace with
    | None ->
        Printf.eprintf "swmodel: metrics needs --trace FILE (a Chrome trace written by --trace)\n";
        exit 1
    | Some path -> (
        match Sw_serve.Handler.metrics_of_trace path with
        | Ok text -> print_string text
        | Error msg -> handler_error msg)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Render the counters of a recorded Chrome trace (--trace FILE) as the same \
          Prometheus-style text the serve daemon's metrics request returns.")
    Term.(const run $ trace_arg)

let main =
  let info = Cmd.info "swmodel" ~doc:"SW26010 static performance model and auto-tuner." in
  Cmd.group info
    [
      list_cmd;
      table1_cmd;
      predict_cmd;
      simulate_cmd;
      tune_cmd;
      shard_worker_cmd;
      serve_cmd;
      metrics_cmd;
      fig6_cmd;
      fig7_cmd;
      fig8_cmd;
      fig9_cmd;
      fig10_cmd;
      table2_cmd;
      asm_cmd;
      timeline_cmd;
      ablation_cmd;
      compare_cmd;
      sensitivity_cmd;
      gflops_cmd;
      coalescing_cmd;
      robustness_cmd;
      calibrate_cmd;
      sweep_cmd;
    ]

let () =
  (* make "surrogate" resolvable even on code paths that never build a
     handler (plain Backend.find users) *)
  Sw_learn.Surrogate.install ();
  exit (Cmd.eval main)
