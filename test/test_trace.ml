open Sw_sim
open Sw_isa
open Sw_arch

let p = Params.default

let ideal = Config.ideal p

let fadd dst srcs = Instr.make Instr.Fadd ~dst srcs

let dma_get ?(addr = 0) bytes =
  Program.Dma_issue { dir = Program.Get; accesses = [ Mem_req.contiguous ~addr ~bytes ]; tag = 0 }

let traced prog = Engine.run_traced ideal [| prog |]

let test_compute_span () =
  let block = [| fadd 1 [ 1; 0 ] |] in
  let m, t = traced [| Program.Compute { block; trips = 100 } |] in
  match t with
  | [ s ] ->
      Alcotest.(check bool) "kind" true (s.Trace.kind = Trace.Compute);
      Alcotest.(check (float 1e-6)) "covers the run" m.Metrics.cycles (s.Trace.t1 -. s.Trace.t0)
  | _ -> Alcotest.failf "expected one span, got %d" (List.length t)

let test_dma_stall_span () =
  let _, t = traced [| dma_get 256; Program.Dma_wait 0 |] in
  match List.filter (fun s -> s.Trace.kind = Trace.Dma_stall) t with
  | [ s ] -> Alcotest.(check (float 1e-6)) "stall = l_base" 220.0 (s.Trace.t1 -. s.Trace.t0)
  | spans -> Alcotest.failf "expected one dma stall, got %d" (List.length spans)

let test_gload_span () =
  let _, t = traced [| Program.Gload { addr = 0; bytes = 8 } |] in
  match t with
  | [ s ] ->
      Alcotest.(check bool) "kind" true (s.Trace.kind = Trace.Gload_stall);
      Alcotest.(check (float 1e-6)) "latency" 220.0 (s.Trace.t1 -. s.Trace.t0)
  | _ -> Alcotest.fail "expected one span"

let test_hidden_dma_no_stall () =
  let block = [| fadd 1 [ 1; 0 ] |] in
  let _, t = traced [| dma_get 256; Program.Compute { block; trips = 1000 }; Program.Dma_wait 0 |] in
  Alcotest.(check int) "fully hidden dma records no stall" 0
    (List.length (List.filter (fun s -> s.Trace.kind = Trace.Dma_stall) t))

let test_totals () =
  let block = [| fadd 1 [ 1; 0 ] |] in
  let m, t =
    traced [| dma_get 2048; Program.Dma_wait 0; Program.Compute { block; trips = 100 } |]
  in
  Alcotest.(check (float 1e-6)) "compute total" m.Metrics.comp_cycles (Trace.total t Trace.Compute);
  Alcotest.(check (float 1e-6)) "dma total" m.Metrics.dma_wait_cycles (Trace.total t Trace.Dma_stall)

let test_run_and_run_traced_agree () =
  let prog = [| dma_get 4096; Program.Dma_wait 0; Program.Gload { addr = 0; bytes = 8 } |] in
  let m1 = Engine.run ideal [| prog |] in
  let m2, _ = Engine.run_traced ideal [| prog |] in
  Alcotest.(check (float 1e-9)) "identical timing" m1.Metrics.cycles m2.Metrics.cycles

let test_render () =
  let block = [| fadd 1 [ 1; 0 ] |] in
  let m, t =
    traced [| dma_get 4096; Program.Dma_wait 0; Program.Compute { block; trips = 500 } |]
  in
  let s = Trace.render ~width:40 ~makespan:m.Metrics.cycles t in
  Alcotest.(check bool) "has a D cell" true (String.contains s 'D');
  Alcotest.(check bool) "has a C cell" true (String.contains s 'C');
  let first_line = List.hd (String.split_on_char '\n' s) in
  Alcotest.(check bool) "row width as requested" true (String.length first_line >= 40)

let test_render_empty () =
  Alcotest.(check string) "empty trace" "(empty trace)\n" (Trace.render ~makespan:0.0 [])

let test_render_degenerate () =
  let spans = [ { Trace.cpe = 0; kind = Trace.Compute; t0 = 0.0; t1 = 400.0 } ] in
  Alcotest.(check string) "empty spans, positive makespan" "(empty trace)\n"
    (Trace.render ~makespan:1000.0 []);
  List.iter
    (fun makespan ->
      Alcotest.(check string)
        (Printf.sprintf "non-renderable makespan %f" makespan)
        "(empty trace)\n"
        (Trace.render ~makespan spans))
    [ 0.0; -5.0; Float.nan; Float.infinity ]

let test_render_near_zero_makespan () =
  (* a makespan of 1e-300 must not overflow int_of_float in column math *)
  let spans = [ { Trace.cpe = 0; kind = Trace.Compute; t0 = 0.0; t1 = 1e-300 } ] in
  let s = Trace.render ~width:20 ~makespan:1e-300 spans in
  Alcotest.(check bool) "renders something" true (String.length s > 0);
  Alcotest.(check bool) "compute cell present" true (String.contains s 'C')

let test_n_cpes_and_per_cpe_totals () =
  Alcotest.(check int) "empty trace has no cpes" 0 (Trace.n_cpes []);
  let spans =
    [
      { Trace.cpe = 0; kind = Trace.Compute; t0 = 0.0; t1 = 10.0 };
      { Trace.cpe = 0; kind = Trace.Compute; t0 = 20.0; t1 = 25.0 };
      { Trace.cpe = 2; kind = Trace.Dma_stall; t0 = 5.0; t1 = 9.0 };
    ]
  in
  Alcotest.(check int) "indexed by largest cpe" 3 (Trace.n_cpes spans);
  let comp = Trace.per_cpe_totals spans Trace.Compute in
  Alcotest.(check int) "array length = n_cpes" 3 (Array.length comp);
  Alcotest.(check (float 1e-9)) "cpe 0 compute" 15.0 comp.(0);
  Alcotest.(check (float 1e-9)) "cpe 1 idle" 0.0 comp.(1);
  let dma = Trace.per_cpe_totals spans Trace.Dma_stall in
  Alcotest.(check (float 1e-9)) "cpe 2 dma" 4.0 dma.(2)

let test_busy_fraction () =
  let block = [| fadd 1 [ 1; 0 ] |] in
  let m, t = traced [| Program.Compute { block; trips = 100 } |] in
  Alcotest.(check (float 1e-6)) "fully busy" 1.0
    (Trace.busy_fraction t ~cpe:0 ~makespan:m.Metrics.cycles)

let tests =
  ( "trace",
    [
      Alcotest.test_case "compute span" `Quick test_compute_span;
      Alcotest.test_case "dma stall span" `Quick test_dma_stall_span;
      Alcotest.test_case "gload span" `Quick test_gload_span;
      Alcotest.test_case "hidden dma has no stall span" `Quick test_hidden_dma_no_stall;
      Alcotest.test_case "totals match metrics" `Quick test_totals;
      Alcotest.test_case "tracing does not change timing" `Quick test_run_and_run_traced_agree;
      Alcotest.test_case "render" `Quick test_render;
      Alcotest.test_case "render empty" `Quick test_render_empty;
      Alcotest.test_case "render degenerate inputs" `Quick test_render_degenerate;
      Alcotest.test_case "render near-zero makespan" `Quick test_render_near_zero_makespan;
      Alcotest.test_case "n_cpes and per-cpe totals" `Quick test_n_cpes_and_per_cpe_totals;
      Alcotest.test_case "busy fraction" `Quick test_busy_fraction;
    ] )
