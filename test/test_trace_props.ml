(* qcheck properties of Engine.run_traced timelines: across random
   kernels, variants and CPE counts, per-CPE spans never overlap, every
   span lies inside [0, makespan], per-kind totals reconcile with the
   Metrics.t aggregates, and rendering/exporting never crashes. *)

open Sw_sim

let p = Sw_arch.Params.default

let config = Config.default p

let eps = 1e-6

(* A random (kernel, variant) pair drawn from the registry's own search
   spaces, restricted to feasible lowerings. *)
let arb_case =
  let gen =
    QCheck.Gen.(
      let* ei = int_range 0 (List.length Sw_workloads.Registry.all - 1) in
      let e = List.nth Sw_workloads.Registry.all ei in
      let* grain = oneofl e.Sw_workloads.Registry.grains in
      let* unroll = oneofl e.Sw_workloads.Registry.unrolls in
      let* active_cpes = oneofl [ 8; 16; 32; 64 ] in
      let* double_buffer = bool in
      return (e.Sw_workloads.Registry.name, grain, unroll, active_cpes, double_buffer))
  in
  let print (name, grain, unroll, cpes, db) =
    Printf.sprintf "%s grain=%d unroll=%d cpes=%d db=%b" name grain unroll cpes db
  in
  QCheck.make ~print gen

let traced (name, grain, unroll, active_cpes, double_buffer) =
  let e = Sw_workloads.Registry.find_exn name in
  let kernel = e.Sw_workloads.Registry.build ~scale:0.25 in
  let v = { Sw_swacc.Kernel.grain; unroll; active_cpes; double_buffer } in
  match Sw_swacc.Lower.lower p kernel v with
  | Error _ -> None
  | Ok lowered -> Some (Engine.run_traced config lowered.Sw_swacc.Lowered.programs)

let on_traced case f = match traced case with None -> true | Some (m, trace) -> f m trace

let prop_spans_within_makespan =
  QCheck.Test.make ~name:"every span lies within [0, makespan]" ~count:30 arb_case (fun case ->
      on_traced case (fun m trace ->
          List.for_all
            (fun s ->
              s.Trace.t0 >= -.eps
              && s.Trace.t1 >= s.Trace.t0
              && s.Trace.t1 <= m.Metrics.cycles +. eps)
            trace))

let prop_per_cpe_no_overlap =
  QCheck.Test.make ~name:"per-CPE spans never overlap" ~count:30 arb_case (fun case ->
      on_traced case (fun _ trace ->
          let by_cpe = Hashtbl.create 64 in
          List.iter
            (fun s ->
              let l = try Hashtbl.find by_cpe s.Trace.cpe with Not_found -> [] in
              Hashtbl.replace by_cpe s.Trace.cpe (s :: l))
            trace;
          Hashtbl.fold
            (fun _ spans ok ->
              ok
              &&
              let sorted =
                List.sort (fun a b -> Float.compare a.Trace.t0 b.Trace.t0) spans
              in
              let rec disjoint = function
                | a :: (b :: _ as rest) ->
                    a.Trace.t1 <= b.Trace.t0 +. eps && disjoint rest
                | _ -> true
              in
              disjoint sorted)
            by_cpe true))

let prop_totals_reconcile_with_metrics =
  QCheck.Test.make ~name:"trace totals equal Metrics aggregates" ~count:30 arb_case (fun case ->
      on_traced case (fun m trace ->
          let max_of a = Array.fold_left Float.max 0.0 a in
          let sum_of a = Array.fold_left ( +. ) 0.0 a in
          let close x y = Float.abs (x -. y) <= eps in
          let comp = Trace.per_cpe_totals trace Trace.Compute in
          let dma = Trace.per_cpe_totals trace Trace.Dma_stall in
          let gload = Trace.per_cpe_totals trace Trace.Gload_stall in
          close (max_of comp) m.Metrics.comp_cycles
          && close (max_of dma) m.Metrics.dma_wait_cycles
          && close (max_of gload) m.Metrics.gload_cycles
          && close (sum_of comp) m.Metrics.comp_cycles_sum
          && close (Trace.total trace Trace.Compute) m.Metrics.comp_cycles_sum))

let prop_render_and_export_total =
  QCheck.Test.make ~name:"render and Chrome export never fail" ~count:20 arb_case (fun case ->
      on_traced case (fun m trace ->
          let ascii = Trace.render ~makespan:m.Metrics.cycles trace in
          let sink = Sw_obs.Sink.create () in
          Sw_obs.Probe.record_run sink ~name:"prop" m trace;
          String.length ascii > 0
          && (match Sw_obs.Json.validate (Sw_obs.Chrome.to_string sink) with
             | Ok () -> true
             | Error _ -> false)
          && Result.is_ok (Sw_obs.Probe.reconcile m trace)))

let tests =
  ( "trace-props",
    [
      QCheck_alcotest.to_alcotest prop_spans_within_makespan;
      QCheck_alcotest.to_alcotest prop_per_cpe_no_overlap;
      QCheck_alcotest.to_alcotest prop_totals_reconcile_with_metrics;
      QCheck_alcotest.to_alcotest prop_render_and_export_total;
    ] )
