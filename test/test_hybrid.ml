open Swpm

let p = Sw_arch.Params.default

let config = Sw_sim.Config.default p

let test_no_gloads_identity () =
  let kernel = Sw_workloads.Vadd.kernel ~scale:0.25 in
  let lowered = Sw_swacc.Lower.lower_exn p kernel Sw_workloads.Vadd.variant in
  let cal = Sw_backend.Backend.calibrate config lowered in
  Alcotest.(check (float 1e-9)) "no gloads, factor 1" 1.0 cal.Hybrid.gload_factor;
  let s = lowered.Sw_swacc.Lowered.summary in
  Alcotest.(check (float 1e-9)) "predict unchanged"
    (Predict.run p s).Predict.t_total
    (Hybrid.predict p s ~calibration:cal).Predict.t_total

let test_factor_scales_gload_term () =
  let e = Sw_workloads.Registry.find_exn "bfs" in
  let lowered =
    Sw_swacc.Lower.lower_exn p (e.Sw_workloads.Registry.build ~scale:0.5)
      e.Sw_workloads.Registry.variant
  in
  let s = lowered.Sw_swacc.Lowered.summary in
  let half = { Hybrid.gload_factor = 0.5; profile_cycles = 0.0 } in
  let base = Predict.run p s in
  let scaled = Hybrid.predict p s ~calibration:half in
  Alcotest.(check (float 1e-6)) "t_g halved" (base.Predict.t_g /. 2.0) scaled.Predict.t_g;
  Alcotest.(check bool) "total shrinks" true (scaled.Predict.t_total < base.Predict.t_total)

let test_factor_clamped () =
  let e = Sw_workloads.Registry.find_exn "bfs" in
  let lowered =
    Sw_swacc.Lower.lower_exn p (e.Sw_workloads.Registry.build ~scale:0.25)
      e.Sw_workloads.Registry.variant
  in
  let cal = Sw_backend.Backend.calibrate config lowered in
  Alcotest.(check bool) "factor in [0.1, 1.5]" true
    (cal.Hybrid.gload_factor >= 0.1 && cal.Hybrid.gload_factor <= 1.5)

let test_balanced_kernel_calibrates_near_one () =
  (* ordinary BFS is already bandwidth-balanced: the probe should not
     move the model much *)
  let e = Sw_workloads.Registry.find_exn "bfs" in
  let lowered =
    Sw_swacc.Lower.lower_exn p (e.Sw_workloads.Registry.build ~scale:1.0)
      e.Sw_workloads.Registry.variant
  in
  let cal = Sw_backend.Backend.calibrate config lowered in
  Alcotest.(check bool)
    (Printf.sprintf "factor %.2f near 1" cal.Hybrid.gload_factor)
    true
    (cal.Hybrid.gload_factor > 0.8 && cal.Hybrid.gload_factor < 1.2)

let test_skewed_study () =
  let r = Sw_experiments.Hybrid_study.run () in
  Alcotest.(check bool)
    (Printf.sprintf "static badly off (%.0f%%)" (r.Sw_experiments.Hybrid_study.static_error *. 100.))
    true
    (r.Sw_experiments.Hybrid_study.static_error > 0.5);
  Alcotest.(check bool)
    (Printf.sprintf "hybrid accurate (%.1f%%)" (r.Sw_experiments.Hybrid_study.hybrid_error *. 100.))
    true
    (r.Sw_experiments.Hybrid_study.hybrid_error < 0.10);
  Alcotest.(check bool) "probe much cheaper than a full run" true
    (r.Sw_experiments.Hybrid_study.profile_fraction < 0.5)

let test_skewed_kernel_shape () =
  let k = Sw_experiments.Hybrid_study.skewed_bfs ~scale:0.5 in
  match k.Sw_swacc.Kernel.gloads with
  | Some g ->
      Alcotest.(check bool) "hub heavier than leaf" true
        (g.Sw_swacc.Kernel.count_for 0 > 10 * g.Sw_swacc.Kernel.count_for 100)
  | None -> Alcotest.fail "skewed bfs must have gloads"

let tests =
  ( "hybrid",
    [
      Alcotest.test_case "no gloads identity" `Quick test_no_gloads_identity;
      Alcotest.test_case "factor scales gload term" `Quick test_factor_scales_gload_term;
      Alcotest.test_case "factor clamped" `Quick test_factor_clamped;
      Alcotest.test_case "balanced kernel near 1" `Quick test_balanced_kernel_calibrates_near_one;
      Alcotest.test_case "skewed study" `Slow test_skewed_study;
      Alcotest.test_case "skewed kernel shape" `Quick test_skewed_kernel_shape;
    ] )
