(* The learned surrogate, gated: cross-validation quality on
   sim-labelled tuning spaces (MAPE and rank correlation), exact model
   persistence, hybrid-style billing of the training run, the
   paper-level differential — an adaptive surrogate-ranked search
   reproduces the exhaustive Table II argmin for less simulated time —
   and the DiffTune-style inverse: coordinate descent recovers
   perturbed simulator parameters from measured cycles alone. *)

module Backend = Sw_backend.Backend
module Features = Sw_learn.Features
module Regressor = Sw_learn.Regressor
module Surrogate = Sw_learn.Surrogate
module Registry = Sw_workloads.Registry
module Space = Sw_tuning.Space
module Search = Sw_tuning.Search
module Tuner = Sw_tuning.Tuner

let p = Sw_arch.Params.default

let config = Sw_sim.Config.default p

let points entry =
  Space.enumerate ~grains:entry.Registry.grains ~unrolls:entry.Registry.unrolls ()

(* features + simulator labels for every feasible point of a kernel's
   registry space *)
let labelled_space name ~scale =
  let entry = Registry.find_exn name in
  let kernel = entry.Registry.build ~scale in
  let rows =
    List.filter_map
      (fun pt ->
        let v = Space.to_variant pt ~active_cpes:64 in
        match (Features.of_variant p kernel v, Backend.assess Backend.simulator config kernel v) with
        | Ok x, Ok verdict -> Some (x, verdict.Backend.cycles)
        | _ -> None)
      (points entry)
  in
  (Array.of_list (List.map fst rows), Array.of_list (List.map snd rows))

(* ------------------------------------------------------------------ *)
(* Cross-validation gates: held-out quality of the ridge fit on real
   simulator labels must clear the thresholds the bench publishes *)

let test_cv_gates () =
  List.iter
    (fun name ->
      let xs, ys = labelled_space name ~scale:0.25 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: enough labelled points" name)
        true
        (Array.length ys >= 10);
      let cv = Regressor.cross_validate xs ys in
      if cv.Regressor.mape > 0.25 then
        Alcotest.failf "%s: held-out MAPE %.3f above 0.25" name cv.Regressor.mape;
      if cv.Regressor.rank_correlation < 0.85 then
        Alcotest.failf "%s: held-out Spearman %.3f below 0.85" name
          cv.Regressor.rank_correlation)
    [ "kmeans"; "cfd"; "lud"; "hotspot"; "backprop" ]

(* ------------------------------------------------------------------ *)
(* Persistence: a saved model predicts bit-identically after reload *)

let test_regressor_roundtrip () =
  let xs, ys = labelled_space "kmeans" ~scale:0.1 in
  let model = Regressor.fit xs ys in
  let path = Filename.temp_file "swpm_model" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Regressor.save model path;
      match Regressor.load path with
      | Error msg -> Alcotest.failf "reload failed: %s" msg
      | Ok back ->
          Alcotest.(check bool) "records equal" true (model = back);
          Array.iter
            (fun x ->
              Alcotest.(check (float 0.0)) "prediction survives the round-trip"
                (Regressor.predict model x) (Regressor.predict back x))
            xs)

let test_regressor_rejects_garbage () =
  (match Regressor.of_json (Sw_obs.Json.Str "nope") with
  | Ok _ -> Alcotest.fail "a string is not a model"
  | Error _ -> ());
  match
    Regressor.of_json
      (Sw_obs.Json.Obj [ ("mean", Sw_obs.Json.Arr []); ("weights", Sw_obs.Json.Null) ])
  with
  | Ok _ -> Alcotest.fail "mismatched arrays are not a model"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Billing: the training bill sticks to the first verdict, like the
   hybrid's profiling run — later assessments are machine-free *)

let test_surrogate_bills_training_once () =
  Surrogate.clear_cache ();
  let entry = Registry.find_exn "kmeans" in
  let kernel = entry.Registry.build ~scale:0.25 in
  let variant = entry.Registry.variant in
  let surrogate = Surrogate.make () in
  let first =
    match Backend.assess surrogate config kernel variant with
    | Ok v -> v
    | Error r -> Alcotest.failf "first assessment failed: %s" r.Backend.reason
  in
  Alcotest.(check bool) "first verdict carries the training bill" true
    (first.Backend.cost.Backend.machine_us > 0.0);
  let second =
    match Backend.assess surrogate config kernel variant with
    | Ok v -> v
    | Error r -> Alcotest.failf "second assessment failed: %s" r.Backend.reason
  in
  Alcotest.(check (float 0.0)) "second verdict is machine-free" 0.0
    second.Backend.cost.Backend.machine_us;
  Alcotest.(check (float 0.0)) "same prediction" first.Backend.cycles
    second.Backend.cycles;
  let fits, hits = Surrogate.cache_stats () in
  Alcotest.(check int) "one fit" 1 fits;
  Alcotest.(check bool) "served from cache afterwards" true (hits >= 1)

let test_surrogate_shared_across_instances () =
  (* two instances with the same recipe share one fit — the process-wide
     cache is what makes CLI and daemon agree *)
  Surrogate.clear_cache ();
  let entry = Registry.find_exn "cfd" in
  let kernel = entry.Registry.build ~scale:0.25 in
  let variant = entry.Registry.variant in
  let a = Result.get_ok (Backend.assess (Surrogate.make ()) config kernel variant) in
  let b = Result.get_ok (Backend.assess (Surrogate.make ()) config kernel variant) in
  let fits, _ = Surrogate.cache_stats () in
  Alcotest.(check int) "one fit across instances" 1 fits;
  Alcotest.(check (float 0.0)) "identical prediction" a.Backend.cycles b.Backend.cycles

(* ------------------------------------------------------------------ *)
(* The differential: adaptive surrogate-ranked search = exhaustive
   argmin on every Table II tuning kernel, for less simulated time in
   aggregate — training bill included *)

let test_adaptive_surrogate_matches_exhaustive () =
  Surrogate.clear_cache ();
  let exhaustive_total = ref 0.0 in
  let adaptive_total = ref 0.0 in
  List.iter
    (fun (entry : Registry.entry) ->
      let kernel = entry.Registry.build ~scale:0.25 in
      let pts = points entry in
      let default = Sw_experiments.Table2.guideline_default p kernel ~grains:entry.Registry.grains in
      let tune strategy =
        Tuner.tune_exn ~backend:Backend.simulator ~strategy ~default config kernel ~points:pts
      in
      let exhaustive = tune Search.exhaustive in
      let adaptive =
        tune (Search.adaptive_shortlist ~rank:(Surrogate.make ()) ~k:6 ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: adaptive surrogate finds the argmin" entry.Registry.name)
        true
        (adaptive.Tuner.best = exhaustive.Tuner.best
        && adaptive.Tuner.best_cycles = exhaustive.Tuner.best_cycles);
      Alcotest.(check bool)
        (Printf.sprintf "%s: ranking pass was billed" entry.Registry.name)
        true
        (adaptive.Tuner.machine_time_us >= adaptive.Tuner.rank_machine_us);
      exhaustive_total := !exhaustive_total +. exhaustive.Tuner.machine_time_us;
      adaptive_total := !adaptive_total +. adaptive.Tuner.machine_time_us)
    Registry.tuning_subset;
  (* simulated time is deterministic, so this ratio is a regression
     gate, not a flaky benchmark: measured 1.65x at this scale with the
     explicit guideline default (the bench gates the 5x claim at full
     scale on a dense space, where the shrunken twin actually pays) *)
  if !adaptive_total *. 1.5 > !exhaustive_total then
    Alcotest.failf "aggregate machine-time cut %.2fx below the 1.5x gate"
      (!exhaustive_total /. !adaptive_total)

let test_adaptive_stops_after_quiet_rung () =
  (* a perfectly-ranked space (rank backend = verify backend) verifies
     exactly one extra rung beyond the argmin's *)
  Surrogate.clear_cache ();
  let entry = Registry.find_exn "lud" in
  let kernel = entry.Registry.build ~scale:0.25 in
  let pts = points entry in
  let default = Sw_experiments.Table2.guideline_default p kernel ~grains:entry.Registry.grains in
  let outcome =
    Tuner.tune_exn ~backend:Backend.simulator
      ~strategy:(Search.adaptive_shortlist ~rank:Backend.simulator ~k:3 ())
      ~default config kernel ~points:pts
  in
  let exhaustive =
    Tuner.tune_exn ~backend:Backend.simulator ~strategy:Search.exhaustive ~default config
      kernel ~points:pts
  in
  Alcotest.(check bool) "self-ranked adaptive finds the argmin" true
    (outcome.Tuner.best = exhaustive.Tuner.best);
  (* rank = verify means rung 1 seeds the incumbent and stays quiet, so
     at most one rung of 3 is verified: everything beyond it is pruned
     unverified (cut-off rung members are pruned too, so the floor is
     |space| - k) *)
  Alcotest.(check bool) "at most one rung verified" true
    (outcome.Tuner.points_pruned >= List.length pts - 3
    && outcome.Tuner.evaluated <= 3)

(* ------------------------------------------------------------------ *)
(* The inverse problem: perturb the simulator's parameters, fit them
   back from measured cycles (DiffTune on our own simulator) *)

let test_calibration_recovers_parameters () =
  let result = Sw_experiments.Calibration_study.run ~scale:0.125 ~sweeps:2 () in
  Alcotest.(check bool) "a useful number of points" true (result.Sw_experiments.Calibration_study.n_points >= 30);
  let report = result.Sw_experiments.Calibration_study.report in
  Alcotest.(check bool) "descent improved the loss" true
    (report.Sw_learn.Calibrate.final_loss < report.Sw_learn.Calibrate.initial_loss);
  let close =
    List.filter
      (fun r -> r.Sw_experiments.Calibration_study.r_error <= 0.10)
      result.Sw_experiments.Calibration_study.recoveries
  in
  if List.length close < 2 then
    Alcotest.failf "only %d of %d parameters recovered within 10%%: %s"
      (List.length close)
      (List.length result.Sw_experiments.Calibration_study.recoveries)
      (String.concat ", "
         (List.map
            (fun r ->
              Printf.sprintf "%s %.1f%%" r.Sw_experiments.Calibration_study.r_name
                (100.0 *. r.Sw_experiments.Calibration_study.r_error))
            result.Sw_experiments.Calibration_study.recoveries))

let test_calibration_identity_is_stable () =
  (* fitting against points measured under the *nominal* configuration
     must not wander away from it: zero initial loss, ties keep the
     incumbent *)
  let points = Sw_experiments.Calibration_study.points ~scale:0.125 config in
  let report = Sw_learn.Calibrate.fit ~sweeps:1 config points in
  Alcotest.(check bool) "already at the optimum" true
    (report.Sw_learn.Calibrate.final_loss <= report.Sw_learn.Calibrate.initial_loss);
  List.iter
    (fun (name, v) ->
      let spec =
        List.find
          (fun s -> s.Sw_learn.Calibrate.p_name = name)
          Sw_learn.Calibrate.default_params
      in
      let nominal = spec.Sw_learn.Calibrate.p_get config in
      if Float.abs (v -. nominal) > 1e-9 *. Float.abs nominal then
        Alcotest.failf "%s drifted from %.2f to %.2f on nominal data" name nominal v)
    report.Sw_learn.Calibrate.trajectory

let tests =
  ( "learn",
    [
      Alcotest.test_case "cross-validation clears the MAPE/Spearman gates" `Quick
        test_cv_gates;
      Alcotest.test_case "model JSON round-trip is exact" `Quick test_regressor_roundtrip;
      Alcotest.test_case "model parser rejects malformed JSON" `Quick
        test_regressor_rejects_garbage;
      Alcotest.test_case "surrogate bills training once, like hybrid" `Quick
        test_surrogate_bills_training_once;
      Alcotest.test_case "surrogate instances share one fit" `Quick
        test_surrogate_shared_across_instances;
      Alcotest.test_case "adaptive surrogate search = exhaustive argmin, cheaper" `Quick
        test_adaptive_surrogate_matches_exhaustive;
      Alcotest.test_case "adaptive stops after one quiet rung" `Quick
        test_adaptive_stops_after_quiet_rung;
      Alcotest.test_case "calibration recovers perturbed parameters" `Quick
        test_calibration_recovers_parameters;
      Alcotest.test_case "calibration is stable at the optimum" `Quick
        test_calibration_identity_is_stable;
    ] )
