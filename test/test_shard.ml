(* Sharded tuning: the partition must be a stable pure function of the
   point (hard-coded FNV-1a expectations pin it across OCaml versions),
   the offline journal readers must merge deterministically and survive
   crafted duplicate / mismatched / truncated inputs, the pipe protocol
   must round-trip bit-exact floats, and the cutoff link must stay
   advisory — wired or not, right or wrong, the argmin never moves. *)

open Sw_tuning
module Backend = Sw_backend.Backend
module Json = Sw_obs.Json

let p = Sw_arch.Params.default

let config = Sw_sim.Config.default p

let pt grain unroll double_buffer = { Space.grain; unroll; double_buffer }

(* ------------------------------------------------------------------ *)
(* Partition *)

(* The shard hash is part of the journal-compatibility contract: a
   coordinator and its workers (possibly different builds) must agree
   on who owns what.  Pin it to values computed independently. *)
let test_assign_stable () =
  Alcotest.(check string)
    "canonical key" "g32|u4|dbtrue"
    (Shard.canonical_key (pt 32 4 true));
  let expect point shard =
    Alcotest.(check int) (Shard.canonical_key point) shard (Shard.assign ~shards:4 point)
  in
  expect (pt 32 1 false) 2;
  expect (pt 32 4 true) 2;
  expect (pt 100 8 false) 3;
  (* in range for every shard count *)
  List.iter
    (fun shards ->
      List.iter
        (fun point ->
          let s = Shard.assign ~shards point in
          if s < 0 || s >= shards then
            Alcotest.failf "assign ~shards:%d %s = %d" shards (Shard.canonical_key point) s)
        [ pt 1 1 false; pt 4096 128 true; pt 7 3 false ])
    [ 1; 2; 3; 4; 7; 16 ];
  (try
     ignore (Shard.assign ~shards:0 (pt 1 1 false));
     Alcotest.fail "shards=0 accepted"
   with Invalid_argument _ -> ())

let test_mine_partitions () =
  let points =
    Space.enumerate ~grains:(Space.range 1 50) ~unrolls:(Space.range 1 8)
      ~double_buffers:[ false; true ] ()
  in
  let shards = 4 in
  let mined = List.init shards (fun shard -> Shard.mine ~shard ~shards points) in
  (* each sub-list is exactly the owned points in enumeration order *)
  List.iteri
    (fun shard sub ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d = filter" shard)
        true
        (sub = List.filter (fun point -> Shard.assign ~shards point = shard) points))
    mined;
  (* the sub-lists partition the space exactly *)
  Alcotest.(check int) "partition total" (List.length points)
    (List.fold_left (fun n sub -> n + List.length sub) 0 mined);
  (* this particular 800-point space splits perfectly (fixed hash, so
     the counts are deterministic — a changed hash shows up here) *)
  List.iteri
    (fun shard sub ->
      Alcotest.(check int) (Printf.sprintf "shard %d count" shard) 200 (List.length sub))
    mined;
  (* membership is a function of the point, not of enumeration order *)
  List.iteri
    (fun shard sub ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d order-independent" shard)
        true
        (Shard.mine ~shard ~shards (List.rev points) = List.rev sub))
    mined;
  (try
     ignore (Shard.mine ~shard:4 ~shards:4 points);
     Alcotest.fail "shard out of range accepted"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Offline journal readers *)

let entry = Sw_workloads.Registry.find_exn "vector-add"

let kernel = entry.Sw_workloads.Registry.build ~scale:0.1

let key point = Backend.journal_key_of kernel (Space.to_variant point ~active_cpes:64)

let write_file path lines =
  let oc = open_out_bin path in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    lines;
  close_out oc

let ok cycles = Backend.Journal_ok { cycles; machine_us = 1.5; machine_events = 42 }

let cycles_of = function
  | Some (Backend.Journal_ok { cycles; _ }) -> cycles
  | Some (Backend.Journal_infeasible _) -> Alcotest.fail "infeasible entry"
  | None -> Alcotest.fail "key missing from merge"

let test_merge_first_written_wins () =
  let k1 = key (pt 32 1 false) and k2 = key (pt 32 2 false) in
  let a = Filename.temp_file "swpm_shard_a" ".jsonl" in
  let b = Filename.temp_file "swpm_shard_b" ".jsonl" in
  write_file a
    [ Backend.journal_header_line config; Backend.journal_entry_line k1 (ok 100.) ];
  write_file b
    [
      Backend.journal_header_line config;
      Backend.journal_entry_line k1 (ok 200.);
      Backend.journal_entry_line k2 (ok 300.);
    ];
  let merged = Backend.journal_merge ~config [ a; b ] in
  Alcotest.(check int) "two distinct keys" 2 (Hashtbl.length merged);
  Alcotest.(check (float 0.)) "duplicate keeps first-written" 100.
    (cycles_of (Hashtbl.find_opt merged k1));
  Alcotest.(check (float 0.)) "unique key from second file" 300.
    (cycles_of (Hashtbl.find_opt merged k2));
  (* path order decides which write is first *)
  let swapped = Backend.journal_merge ~config [ b; a ] in
  Alcotest.(check (float 0.)) "swapped order keeps b's entry" 200.
    (cycles_of (Hashtbl.find_opt swapped k1));
  Sys.remove a;
  Sys.remove b

let test_digest_mismatch () =
  let other = { config with Sw_sim.Config.seed = config.Sw_sim.Config.seed + 1 } in
  let path = Filename.temp_file "swpm_shard_mismatch" ".jsonl" in
  write_file path
    [ Backend.journal_header_line other; Backend.journal_entry_line (key (pt 32 1 false)) (ok 1.) ];
  (match Backend.journal_read ~config path with
  | Error (Backend.Journal_mismatched { path = p; expected; found }) ->
      Alcotest.(check string) "mismatch path" path p;
      Alcotest.(check string) "expected digest" (Backend.config_digest config) expected;
      Alcotest.(check string) "found digest" (Backend.config_digest other) found
  | Error (Backend.Journal_unreadable _) -> Alcotest.fail "mismatch misread as unreadable"
  | Ok _ -> Alcotest.fail "mismatched journal read back as Ok");
  Alcotest.check_raises "merge propagates the mismatch"
    (Backend.Journal_mismatch
       {
         path;
         expected = Backend.config_digest config;
         found = Backend.config_digest other;
       })
    (fun () -> ignore (Backend.journal_merge ~config [ path ]));
  Sys.remove path

let test_truncated_tail () =
  let k1 = key (pt 32 1 false) and k2 = key (pt 32 2 false) in
  let truncated = Filename.temp_file "swpm_shard_trunc" ".jsonl" in
  let good = Filename.temp_file "swpm_shard_good" ".jsonl" in
  let full = Backend.journal_entry_line k2 (ok 200.) in
  let oc = open_out_bin truncated in
  output_string oc (Backend.journal_header_line config);
  output_char oc '\n';
  output_string oc (Backend.journal_entry_line k1 (ok 100.));
  output_char oc '\n';
  (* the kill-mid-write case: half an entry, no newline *)
  output_string oc (String.sub full 0 (String.length full / 2));
  close_out oc;
  let entries =
    match Backend.journal_read ~config truncated with
    | Ok entries -> entries
    | Error issue -> Alcotest.failf "truncated tail: %s" (Backend.journal_issue_string issue)
  in
  Alcotest.(check int) "partial tail dropped" 1 (List.length entries);
  Alcotest.(check (float 0.)) "surviving entry intact" 100.
    (cycles_of (Option.map snd (List.nth_opt entries 0)));
  (* a truncated shard does not poison the merge *)
  write_file good
    [ Backend.journal_header_line config; Backend.journal_entry_line k2 (ok 200.) ];
  let merged = Backend.journal_merge ~config [ truncated; good ] in
  Alcotest.(check int) "both shards merged" 2 (Hashtbl.length merged);
  Alcotest.(check (float 0.)) "good shard's entry present" 200.
    (cycles_of (Hashtbl.find_opt merged k2));
  Sys.remove truncated;
  Sys.remove good

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_protocol_roundtrip () =
  let cases =
    [
      Shard.Incumbent { cycles = 1140894.5999990494; seq = 0 };  (* needs all 17 digits *)
      Shard.Incumbent { cycles = 18463.25; seq = 41 };
      Shard.Heartbeat { seq = 7 };
      Shard.Cutoff 18463.2;
      Shard.Done (Json.Obj [ ("shard", Json.Int 0); ("cpu_s", Json.Float 1.5) ]);
    ]
  in
  List.iter
    (fun msg ->
      let line = Shard.encode msg in
      match Shard.decode line with
      | Some msg' -> Alcotest.(check bool) line true (msg = msg')
      | None -> Alcotest.failf "%s does not decode" line)
    cases;
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "reject %S" line) true (Shard.decode line = None))
    [ "not json"; "{\"ev\": \"nope\"}"; "{\"ev\": \"incumbent\"}"; "{}"; "" ]

(* ------------------------------------------------------------------ *)
(* Cutoff link: advisory by construction *)

let best_priced results =
  List.fold_left
    (fun acc (_, r) ->
      match r with
      | Search.Priced v -> (
          match acc with
          | Some c when c <= v.Backend.cycles -> acc
          | _ -> Some v.Backend.cycles)
      | _ -> acc)
    None results

(* costs carry measured host seconds; compare what the tuner folds *)
let shape results =
  List.map
    (fun (point, r) ->
      ( point,
        match r with
        | Search.Priced v -> `Priced v.Backend.cycles
        | Search.Rejected _ -> `Rejected
        | Search.Pruned _ -> `Pruned ))
    results

let test_link_advisory () =
  let kernel = entry.Sw_workloads.Registry.build ~scale:0.05 in
  let points =
    Space.enumerate ~grains:entry.Sw_workloads.Registry.grains
      ~unrolls:entry.Sw_workloads.Registry.unrolls ()
  in
  let run ?link () =
    Search.run (Search.shortlist ~k:4 ()) ~backend:Backend.simulator ~active_cpes:64 ?link
      config kernel ~points
  in
  let baseline, _ = run () in
  let best = Option.get (best_priced baseline) in
  (* a no-op link changes nothing and sees every incumbent improvement *)
  let published = ref [] in
  let noop =
    { Search.publish = (fun c -> published := c :: !published); current = (fun () -> None) }
  in
  let linked, _ = run ~link:noop () in
  Alcotest.(check bool) "no-op link: identical results" true (shape baseline = shape linked);
  Alcotest.(check bool) "publish fired" true (!published <> []);
  Alcotest.(check (float 0.)) "final incumbent published" best
    (List.fold_left Stdlib.min infinity !published);
  (* a remote incumbent equal to the true minimum prunes the rest but —
     cutoffs being strict — still prices the minimum itself *)
  let tight = { Search.publish = ignore; current = (fun () -> Some best) } in
  let pruned, _ = run ~link:tight () in
  Alcotest.(check (float 0.)) "tight remote cutoff keeps the argmin" best
    (Option.get (best_priced pruned))

(* ------------------------------------------------------------------ *)
(* Axis parsing (the CLI surface the bench spaces come through) *)

let test_axis_syntax () =
  Alcotest.(check (list int)) "range" [ 1; 2; 3; 4 ] (Space.range 1 4);
  Alcotest.(check (list int)) "range step" [ 2; 5; 8 ] (Space.range ~step:3 2 10);
  Alcotest.(check (list int)) "range empty" [] (Space.range 5 4);
  (try
     ignore (Space.range ~step:0 1 4);
     Alcotest.fail "step=0 accepted"
   with Invalid_argument _ -> ());
  let ok spec expected =
    match Space.parse_axis spec with
    | Ok vs -> Alcotest.(check (list int)) spec expected vs
    | Error msg -> Alcotest.failf "%s rejected: %s" spec msg
  in
  ok "1..4" [ 1; 2; 3; 4 ];
  ok "2..10:3" [ 2; 5; 8 ];
  ok "5" [ 5 ];
  ok "1,2,9" [ 1; 2; 9 ];
  List.iter
    (fun spec ->
      match Space.parse_axis spec with
      | Ok _ -> Alcotest.failf "%s accepted" spec
      | Error _ -> ())
    [ "0..3"; "x"; "1.."; ""; "3..1:0" ]

let tests =
  ( "shard",
    [
      Alcotest.test_case "assign is a stable pure hash" `Quick test_assign_stable;
      Alcotest.test_case "mine partitions the space exactly" `Quick test_mine_partitions;
      Alcotest.test_case "merge keeps the first-written duplicate" `Quick
        test_merge_first_written_wins;
      Alcotest.test_case "digest mismatch raises the typed error" `Quick test_digest_mismatch;
      Alcotest.test_case "truncated tail dropped without poisoning the merge" `Quick
        test_truncated_tail;
      Alcotest.test_case "protocol lines round-trip bit-exactly" `Quick test_protocol_roundtrip;
      Alcotest.test_case "cutoff link is advisory" `Slow test_link_advisory;
      Alcotest.test_case "axis syntax" `Quick test_axis_syntax;
    ] )
