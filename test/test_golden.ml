(* Golden-file regression tests for the observability surfaces: the
   ASCII timeline and the Chrome-trace JSON of a fixed-seed Figure 4
   run (8 CPEs, to keep the files small) and of one Table II kernel
   (kmeans at scale 0.25, default variant).

   Machine-clock events derive purely from the seeded simulator, so the
   outputs are byte-stable; the only volatile content is the host-clock
   "host.*" counter family, whose values the comparison zeroes before
   diffing.  Regenerate with:

     SWPM_WRITE_GOLDEN=$PWD/test/golden dune runtest --force *)

open Sw_obs

(* dune runtest runs the binary in _build/default/test (goldens staged
   as "golden/" by the dune deps glob); dune exec from the project root
   sees them at "test/golden". *)
let golden_dir = if Sys.file_exists "golden" then "golden" else Filename.concat "test" "golden"

let write_dir = Sys.getenv_opt "SWPM_WRITE_GOLDEN"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let contains line needle =
  let nh = String.length line and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub line i nn = needle || go (i + 1)) in
  go 0

(* Zero the value of every host-clock counter event, the one field that
   depends on wall time.  Events are one per line, so this is a simple
   line rewrite. *)
let normalize json =
  String.split_on_char '\n' json
  |> List.map (fun line ->
         if contains line "\"name\": \"host." && contains line "{\"value\": " then
           let i =
             let marker = "{\"value\": " in
             let rec find j =
               if j + String.length marker > String.length line then raise Not_found
               else if String.sub line j (String.length marker) = marker then
                 j + String.length marker
               else find (j + 1)
             in
             find 0
           in
           let j = String.index_from line i '}' in
           String.sub line 0 i ^ "0" ^ String.sub line j (String.length line - j)
         else line)
  |> String.concat "\n"

let check_golden ~file actual =
  (match write_dir with
  | Some dir -> write_file (Filename.concat dir file) actual
  | None -> ());
  let path = Filename.concat golden_dir file in
  if not (Sys.file_exists path) then
    Alcotest.failf "missing golden %s (regenerate with SWPM_WRITE_GOLDEN)" path;
  let expected = read_file path in
  if String.equal expected actual then ()
  else
    let show s =
      Printf.sprintf "%d bytes, first divergence at byte %d"
        (String.length s)
        (let n = min (String.length s) (String.length expected) in
         let rec go i = if i < n && s.[i] = expected.[i] then go (i + 1) else i in
         go 0)
    in
    Alcotest.failf "%s drifted from its golden (%s)" file (show actual)

(* ------------------------------------------------------------------ *)
(* Figure 4, compute-bound scenario at 8 CPEs *)

let fig4_outputs =
  lazy
    (let sink = Sink.create () in
     let r = Sw_experiments.Fig4_timeline.run_compute_bound ~active_cpes:8 ~obs:sink () in
     (r.Sw_experiments.Fig4_timeline.timeline, normalize (Chrome.to_string sink)))

let test_fig4_timeline_golden () =
  let timeline, _ = Lazy.force fig4_outputs in
  check_golden ~file:"fig4_compute_timeline.txt" timeline

let test_fig4_trace_golden () =
  let _, json = Lazy.force fig4_outputs in
  (match Json.validate json with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "normalized trace is invalid JSON: %s" msg);
  check_golden ~file:"fig4_compute_trace.json" json

(* ------------------------------------------------------------------ *)
(* Figure 4, memory-bound scenario at 8 CPEs: the DMA-dominated
   timeline, where the async request arrows and mc_busy bars carry the
   story the compute-bound golden cannot *)

let fig4_mem_outputs =
  lazy
    (let sink = Sink.create () in
     let r = Sw_experiments.Fig4_timeline.run_memory_bound ~active_cpes:8 ~obs:sink () in
     (r.Sw_experiments.Fig4_timeline.timeline, normalize (Chrome.to_string sink)))

let test_fig4_mem_timeline_golden () =
  let timeline, _ = Lazy.force fig4_mem_outputs in
  check_golden ~file:"fig4_memory_timeline.txt" timeline

let test_fig4_mem_trace_golden () =
  let _, json = Lazy.force fig4_mem_outputs in
  (match Json.validate json with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "normalized trace is invalid JSON: %s" msg);
  check_golden ~file:"fig4_memory_trace.json" json

(* ------------------------------------------------------------------ *)
(* Table II kernel: kmeans, default variant, scale 0.25 *)

let kmeans_outputs =
  lazy
    (let p = Sw_arch.Params.default in
     let config = Sw_sim.Config.default p in
     let e = Sw_workloads.Registry.find_exn "kmeans" in
     let kernel = e.Sw_workloads.Registry.build ~scale:0.25 in
     let lowered = Sw_swacc.Lower.lower_exn p kernel e.Sw_workloads.Registry.variant in
     let sink = Sink.create () in
     let m, trace =
       Probe.run_traced sink ~name:"kmeans" config lowered.Sw_swacc.Lowered.programs
     in
     (match Probe.reconcile m trace with
     | Ok () -> ()
     | Error msg -> Alcotest.failf "kmeans trace does not reconcile: %s" msg);
     let timeline =
       Sw_sim.Trace.render ~width:72 ~max_cpes:8 ~makespan:m.Sw_sim.Metrics.cycles trace
     in
     (timeline, normalize (Chrome.to_string sink)))

let test_kmeans_timeline_golden () =
  let timeline, _ = Lazy.force kmeans_outputs in
  check_golden ~file:"kmeans_timeline.txt" timeline

let test_kmeans_trace_golden () =
  let _, json = Lazy.force kmeans_outputs in
  (match Json.validate json with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "normalized trace is invalid JSON: %s" msg);
  check_golden ~file:"kmeans_trace.json" json

(* ------------------------------------------------------------------ *)
(* Gload-heavy irregular kernel: bfs, default variant, small scale —
   locks down the gload-stall span stream, which no other golden
   exercises *)

let bfs_outputs =
  lazy
    (let p = Sw_arch.Params.default in
     let config = Sw_sim.Config.default p in
     let e = Sw_workloads.Registry.find_exn "bfs" in
     let kernel = e.Sw_workloads.Registry.build ~scale:0.02 in
     (* 8 CPEs keep the golden small while still exercising gather
        traffic from every simulated core *)
     let variant = { e.Sw_workloads.Registry.variant with Sw_swacc.Kernel.active_cpes = 8 } in
     let lowered = Sw_swacc.Lower.lower_exn p kernel variant in
     let sink = Sink.create () in
     let m, trace =
       Probe.run_traced sink ~name:"bfs" config lowered.Sw_swacc.Lowered.programs
     in
     (match Probe.reconcile m trace with
     | Ok () -> ()
     | Error msg -> Alcotest.failf "bfs trace does not reconcile: %s" msg);
     let timeline =
       Sw_sim.Trace.render ~width:72 ~max_cpes:8 ~makespan:m.Sw_sim.Metrics.cycles trace
     in
     (timeline, normalize (Chrome.to_string sink)))

let test_bfs_timeline_golden () =
  let timeline, _ = Lazy.force bfs_outputs in
  check_golden ~file:"bfs_timeline.txt" timeline

let test_bfs_trace_golden () =
  let _, json = Lazy.force bfs_outputs in
  (match Json.validate json with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "normalized trace is invalid JSON: %s" msg);
  check_golden ~file:"bfs_trace.json" json

let tests =
  ( "golden",
    [
      Alcotest.test_case "fig4 timeline matches golden" `Quick test_fig4_timeline_golden;
      Alcotest.test_case "fig4 chrome trace matches golden" `Quick test_fig4_trace_golden;
      Alcotest.test_case "fig4 memory timeline matches golden" `Quick
        test_fig4_mem_timeline_golden;
      Alcotest.test_case "fig4 memory chrome trace matches golden" `Quick
        test_fig4_mem_trace_golden;
      Alcotest.test_case "kmeans timeline matches golden" `Quick test_kmeans_timeline_golden;
      Alcotest.test_case "kmeans chrome trace matches golden" `Quick test_kmeans_trace_golden;
      Alcotest.test_case "bfs timeline matches golden" `Quick test_bfs_timeline_golden;
      Alcotest.test_case "bfs chrome trace matches golden" `Quick test_bfs_trace_golden;
    ] )
