open Sw_workloads

let p = Sw_arch.Params.default

let config = Sw_sim.Config.default p

(* Every registered kernel must build, lower with its default variant,
   produce valid programs, fit the SPM, and survive a (scaled-down)
   simulation with sensible metrics. *)
let check_entry scale (e : Registry.entry) () =
  let kernel = e.Registry.build ~scale in
  let lowered = Sw_swacc.Lower.lower_exn p kernel e.Registry.variant in
  Alcotest.(check bool) "fits SPM" true
    (lowered.Sw_swacc.Lowered.spm_bytes_per_cpe <= p.Sw_arch.Params.spm_bytes);
  Array.iter
    (fun prog ->
      match Sw_isa.Program.validate p prog with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invalid program: %s" m)
    lowered.Sw_swacc.Lowered.programs;
  let m = Sw_backend.Machine.metrics config lowered in
  Alcotest.(check bool) "positive makespan" true (m.Sw_sim.Metrics.cycles > 0.0);
  Alcotest.(check bool) "moved data" true (m.Sw_sim.Metrics.transactions > 0)

let build_tests =
  List.map
    (fun (e : Registry.entry) ->
      Alcotest.test_case ("end-to-end " ^ e.Registry.name) `Quick (check_entry 0.25 e))
    Registry.all

let test_registry_names_unique () =
  let names = Registry.names () in
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "no duplicates" (List.length names) (List.length sorted)

let test_registry_lookup () =
  Alcotest.(check bool) "find kmeans" true (Registry.find "kmeans" <> None);
  Alcotest.(check bool) "unknown" true (Registry.find "nope" = None);
  match Registry.find_exn "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_tuning_subset () =
  Alcotest.(check (list string)) "Table II kernels"
    [ "kmeans"; "cfd"; "lud"; "hotspot"; "backprop" ]
    (List.map (fun (e : Registry.entry) -> e.Registry.name) Registry.tuning_subset)

let test_rodinia_count () =
  Alcotest.(check int) "13 Rodinia-style kernels" 13 (List.length Registry.rodinia)

let test_irregular_kernels_gload_dominated () =
  List.iter
    (fun name ->
      let e = Registry.find_exn name in
      let kernel = e.Registry.build ~scale:0.25 in
      let lowered = Sw_swacc.Lower.lower_exn p kernel e.Registry.variant in
      Alcotest.(check bool) (name ^ " issues gloads") true
        (lowered.Sw_swacc.Lowered.summary.Sw_swacc.Lowered.gload_count > 0))
    [ "bfs"; "b+tree"; "streamcluster"; "leukocyte" ]

let test_regular_kernels_no_gloads () =
  List.iter
    (fun name ->
      let e = Registry.find_exn name in
      let kernel = e.Registry.build ~scale:0.25 in
      let lowered = Sw_swacc.Lower.lower_exn p kernel e.Registry.variant in
      Alcotest.(check int) (name ^ " has no gloads") 0
        lowered.Sw_swacc.Lowered.summary.Sw_swacc.Lowered.gload_count)
    [ "vector-add"; "lud"; "hotspot"; "nbody"; "wrf-physics" ]

let test_bfs_imbalanced_degrees () =
  let seen = Hashtbl.create 8 in
  for node = 0 to 999 do
    Hashtbl.replace seen (Bfs.degree_of ~seed:0xBF5 node) ()
  done;
  Alcotest.(check bool) "degree spread" true (Hashtbl.length seen > 4)

let test_scale_changes_size () =
  let small = Kmeans.kernel ~scale:0.5 in
  let big = Kmeans.kernel ~scale:1.0 in
  Alcotest.(check int) "half the points" (big.Sw_swacc.Kernel.n_elements / 2)
    small.Sw_swacc.Kernel.n_elements

let test_builds_deterministic () =
  let a = Bfs.kernel ~scale:0.5 and b = Bfs.kernel ~scale:0.5 in
  (* gload traces must match exactly across builds *)
  match (a.Sw_swacc.Kernel.gloads, b.Sw_swacc.Kernel.gloads) with
  | Some ga, Some gb ->
      for e = 0 to 199 do
        Alcotest.(check int) "same degree" (ga.Sw_swacc.Kernel.count_for e) (gb.Sw_swacc.Kernel.count_for e);
        for j = 0 to ga.Sw_swacc.Kernel.count_for e - 1 do
          Alcotest.(check int) "same address" (ga.Sw_swacc.Kernel.addr_for e j)
            (gb.Sw_swacc.Kernel.addr_for e j)
        done
      done
  | _ -> Alcotest.fail "bfs should have gloads"

let test_wrf_dynamics_slice_waste () =
  (* the Fig 9 mechanism: slices shrink below the transaction size as
     active CPEs grow *)
  Alcotest.(check int) "48 CPEs: 512B slices" 512 (Wrf_dynamics.slice_bytes ~active:48);
  Alcotest.(check int) "256 CPEs: 96B slices" 96 (Wrf_dynamics.slice_bytes ~active:256);
  Alcotest.(check bool) "96B wastes most of a transaction" true
    (Wrf_dynamics.slice_bytes ~active:256 < p.Sw_arch.Params.trans_size)

let test_wrf_dynamics_rejects_nondivisor () =
  match Wrf_dynamics.slice_bytes ~active:7 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "7 does not divide the row"

let test_default_variants_feasible () =
  List.iter
    (fun (e : Registry.entry) ->
      let kernel = e.Registry.build ~scale:1.0 in
      Alcotest.(check bool) (e.Registry.name ^ " default variant fits") true
        (Sw_swacc.Lower.spm_required kernel e.Registry.variant <= p.Sw_arch.Params.spm_bytes))
    Registry.all

let test_search_spaces_nonempty () =
  List.iter
    (fun (e : Registry.entry) ->
      Alcotest.(check bool) (e.Registry.name ^ " grains") true (e.Registry.grains <> []);
      Alcotest.(check bool) (e.Registry.name ^ " unrolls") true (e.Registry.unrolls <> []))
    Registry.all

let tests =
  ( "workloads",
    build_tests
    @ [
        Alcotest.test_case "registry names unique" `Quick test_registry_names_unique;
        Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
        Alcotest.test_case "tuning subset" `Quick test_tuning_subset;
        Alcotest.test_case "13 rodinia kernels" `Quick test_rodinia_count;
        Alcotest.test_case "irregular kernels use gloads" `Quick test_irregular_kernels_gload_dominated;
        Alcotest.test_case "regular kernels avoid gloads" `Quick test_regular_kernels_no_gloads;
        Alcotest.test_case "bfs degrees imbalanced" `Quick test_bfs_imbalanced_degrees;
        Alcotest.test_case "scale changes size" `Quick test_scale_changes_size;
        Alcotest.test_case "builds deterministic" `Quick test_builds_deterministic;
        Alcotest.test_case "wrf dynamics slice waste" `Quick test_wrf_dynamics_slice_waste;
        Alcotest.test_case "wrf dynamics rejects non-divisor" `Quick test_wrf_dynamics_rejects_nondivisor;
        Alcotest.test_case "default variants feasible" `Quick test_default_variants_feasible;
        Alcotest.test_case "search spaces non-empty" `Quick test_search_spaces_nonempty;
      ] )
