(* Graceful degradation and crash-safe tuning: timeout/retry/fallback
   combinators, the single-flight memoizer under domain fan-out, the
   assessment journal (resume after a kill is bit-identical and never
   recomputes journaled points), the robust search strategy, and the
   sink's unbalanced-async guard. *)

module Backend = Sw_backend.Backend
module Fault = Sw_fault.Fault
module Tuner = Sw_tuning.Tuner
module Search = Sw_tuning.Search

let p = Sw_arch.Params.default

let config = Sw_sim.Config.default p

let entry name = Sw_workloads.Registry.find_exn name

let kernel_of name scale = (entry name).Sw_workloads.Registry.build ~scale

let points_of name =
  let e = entry name in
  Sw_tuning.Space.enumerate ~grains:e.Sw_workloads.Registry.grains
    ~unrolls:e.Sw_workloads.Registry.unrolls ()

let tmp_file suffix = Filename.temp_file "swpm_test_" suffix

exception Flaky of int

(* A backend that raises on its first [failures] assessments, then
   delegates to the static model. *)
let flaky ~failures () : Backend.t =
  let calls = Atomic.make 0 in
  let module W = struct
    let name = "flaky"

    let description = "raises on the first assessments, then delegates"

    let assess ?cutoff ?event_budget config kernel variant =
      let n = Atomic.fetch_and_add calls 1 in
      if n < failures then raise (Flaky n);
      Backend.assess_budget ?cutoff ?event_budget Backend.static_model config kernel variant
  end in
  (module W : Backend.S)

let always_raises : Backend.t =
  (module struct
    let name = "broken"

    let description = "always raises"

    let assess ?cutoff:_ ?event_budget:_ _ _ _ = raise (Flaky (-1))
  end)

(* ------------------------------------------------------------------ *)
(* with_retry / with_timeout *)

let test_retry_recovers_from_transient_failures () =
  let sink = Sw_obs.Sink.create () in
  let b = Backend.with_retry ~sink ~attempts:3 (flaky ~failures:2 ()) in
  let kernel = kernel_of "kmeans" 0.25 in
  let v = (entry "kmeans").Sw_workloads.Registry.variant in
  let verdict = Result.get_ok (Backend.assess b config kernel v) in
  Alcotest.(check bool) "third try answers" true (verdict.Backend.cycles > 0.0);
  Alcotest.(check (float 0.0)) "two retries counted" 2.0
    (Sw_obs.Sink.counter sink "backend.retry.flaky")

let test_retry_budget_exhausts () =
  let b = Backend.with_retry ~attempts:2 (flaky ~failures:5 ()) in
  let kernel = kernel_of "kmeans" 0.25 in
  let v = (entry "kmeans").Sw_workloads.Registry.variant in
  match Backend.assess b config kernel v with
  | exception Flaky _ -> ()
  | _ -> Alcotest.fail "expected the last exception to propagate"

let test_timeout_disqualifies () =
  let sink = Sw_obs.Sink.create () in
  let b = Backend.with_timeout ~sink ~limit_s:0.0 Backend.simulator in
  let kernel = kernel_of "kmeans" 0.25 in
  let v = (entry "kmeans").Sw_workloads.Registry.variant in
  (match Backend.assess b config kernel v with
  | exception Backend.Timeout { backend; limit_s; elapsed_s } ->
      Alcotest.(check string) "names the inner backend" "sim" backend;
      Alcotest.(check (float 0.0)) "carries the limit" 0.0 limit_s;
      Alcotest.(check bool) "elapsed > limit" true (elapsed_s > 0.0)
  | _ -> Alcotest.fail "expected Timeout");
  Alcotest.(check (float 0.0)) "timeout counted" 1.0
    (Sw_obs.Sink.counter sink "backend.timeout.sim")

let test_generous_timeout_is_transparent () =
  let kernel = kernel_of "kmeans" 0.25 in
  let v = (entry "kmeans").Sw_workloads.Registry.variant in
  let plain = Result.get_ok (Backend.assess Backend.simulator config kernel v) in
  let wrapped =
    Result.get_ok (Backend.assess (Backend.with_timeout ~limit_s:3600.0 Backend.simulator) config kernel v)
  in
  Alcotest.(check (float 0.0)) "verdict unchanged" plain.Backend.cycles wrapped.Backend.cycles

(* ------------------------------------------------------------------ *)
(* fallback *)

let test_fallback_degrades_and_counts () =
  let sink = Sw_obs.Sink.create () in
  let chain =
    Backend.fallback ~sink
      [ always_raises; Backend.with_timeout ~sink ~limit_s:0.0 Backend.simulator; Backend.static_model ]
  in
  let kernel = kernel_of "kmeans" 0.25 in
  let v = (entry "kmeans").Sw_workloads.Registry.variant in
  let verdict = Result.get_ok (Backend.assess chain config kernel v) in
  let expected = Result.get_ok (Backend.assess Backend.static_model config kernel v) in
  Alcotest.(check (float 0.0)) "the surviving backend answers" expected.Backend.cycles
    verdict.Backend.cycles;
  Alcotest.(check (float 0.0)) "first hop counted" 1.0
    (Sw_obs.Sink.counter sink "backend.degraded.broken");
  Alcotest.(check (float 0.0)) "second hop counted" 1.0
    (Sw_obs.Sink.counter sink "backend.degraded.timeout(sim)")

let test_fallback_exhaustion_is_infeasible_not_raise () =
  let sink = Sw_obs.Sink.create () in
  let chain = Backend.fallback ~sink [ always_raises; always_raises ] in
  let kernel = kernel_of "kmeans" 0.25 in
  let v = (entry "kmeans").Sw_workloads.Registry.variant in
  (match Backend.assess chain config kernel v with
  | Error { Backend.reason; _ } ->
      Alcotest.(check bool) "names the last failure" true
        (String.length reason > 0)
  | Ok _ -> Alcotest.fail "expected Infeasible");
  Alcotest.(check (float 0.0)) "exhaustion counted" 1.0
    (Sw_obs.Sink.counter sink "backend.fallback.exhausted")

(* Acceptance: the sim > hybrid > model chain never raises on any Table
   II point, under fault plans and a zero-second timeout that forces the
   simulator hop to fail every time. *)
let test_fallback_never_raises_on_table2_under_faults () =
  let sink = Sw_obs.Sink.create () in
  let chain =
    Backend.fallback ~sink
      [
        Backend.with_timeout ~sink ~limit_s:0.0 Backend.simulator;
        Backend.hybrid ();
        Backend.static_model;
      ]
  in
  let plan = Fault.plan ~spec:Fault.harsh ~seed:3 config in
  let assessed = ref 0 in
  List.iter
    (fun (e : Sw_workloads.Registry.entry) ->
      let kernel = e.build ~scale:0.25 in
      List.iter
        (fun pt ->
          let v = Sw_tuning.Space.to_variant pt ~active_cpes:64 in
          match Backend.assess chain plan kernel v with
          | Ok _ | Error _ -> incr assessed
          | exception e ->
              Alcotest.fail
                (Printf.sprintf "fallback raised %s on %s" (Printexc.to_string e)
                   kernel.Sw_swacc.Kernel.name))
        (points_of e.name))
    Sw_workloads.Registry.tuning_subset;
  Alcotest.(check bool) "assessed the whole table" true (!assessed > 0);
  Alcotest.(check (float 0.0)) "every simulator hop visibly degraded"
    (float_of_int !assessed)
    (Sw_obs.Sink.counter sink "backend.degraded.timeout(sim)")

(* ------------------------------------------------------------------ *)
(* Memoizer hammered from concurrent domains (satellite) *)

let test_memo_hammered_from_domains () =
  let memo = Backend.memoize Backend.static_model in
  let b = Backend.memoized memo in
  let kernel = kernel_of "kmeans" 0.25 in
  let points = points_of "kmeans" in
  let variants = List.map (Sw_tuning.Space.to_variant ~active_cpes:64) points in
  let distinct = List.length (List.sort_uniq compare variants) in
  (* 4 domains x 3 rounds over the same keys: every key is computed
     exactly once, everything else is a hit *)
  let rounds = 3 in
  let jobs = List.concat (List.init rounds (fun _ -> variants)) in
  let pool = Sw_util.Pool.create ~size:4 () in
  let results = Sw_util.Pool.map pool (fun v -> Backend.assess b config kernel v) jobs in
  let total = List.length jobs in
  Alcotest.(check int) "misses = distinct keys" distinct (Backend.memo_misses memo);
  Alcotest.(check int) "hits = everything else" (total - distinct) (Backend.memo_hits memo);
  (* all rounds agree bit-for-bit *)
  let cycles_of = function
    | Ok v -> v.Backend.cycles
    | Error _ -> Float.nan
  in
  let first_round = List.filteri (fun i _ -> i < distinct) results in
  List.iteri
    (fun i r ->
      let expected = List.nth first_round (i mod distinct) in
      Alcotest.(check bool) "hit equals first computation" true
        (cycles_of r = cycles_of expected || (Result.is_error r && Result.is_error expected)))
    results

(* ------------------------------------------------------------------ *)
(* Crash-safe journal *)

let count_lines path =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

let test_checkpointed_sweep_resumes_bit_identical () =
  let path = tmp_file ".journal" in
  Sys.remove path;
  let kernel = kernel_of "kmeans" 0.25 in
  let points = points_of "kmeans" in
  let uninterrupted =
    Tuner.tune_exn ~backend:Backend.simulator config kernel ~points
  in
  (* first checkpointed run: everything is a miss, all journaled *)
  let o1 =
    Tuner.tune_exn ~backend:Backend.simulator ~checkpoint:path config kernel ~points
  in
  Alcotest.(check int) "first run replays nothing" 0 o1.Tuner.journal_hits;
  Alcotest.(check int) "first run journals every point" (List.length points)
    o1.Tuner.journal_misses;
  (* simulate a kill mid-write: truncate the file into a partial tail *)
  let full = count_lines path in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let cut = String.length contents - 37 in
  let oc = open_out_bin path in
  output_string oc (String.sub contents 0 cut);
  close_out oc;
  (* resume: the intact prefix replays, the lost tail (the truncated
     line and anything after it) recomputes, the argmin is bit-identical *)
  let memo = Backend.memoize Backend.simulator in
  let o2 =
    Tuner.tune_exn ~backend:(Backend.memoized memo) ~checkpoint:path config kernel ~points
  in
  Alcotest.(check bool) "same pick" true (o2.Tuner.best = uninterrupted.Tuner.best);
  Alcotest.(check (float 0.0)) "bit-identical cycles" uninterrupted.Tuner.best_cycles
    o2.Tuner.best_cycles;
  Alcotest.(check bool) "most points replayed, not recomputed" true
    (o2.Tuner.journal_hits >= full - 2);
  (* the inner memo proves replay never touched the backend *)
  Alcotest.(check int) "recomputed only the lost tail" o2.Tuner.journal_misses
    (Backend.memo_misses memo);
  (* a third run replays everything and recomputes nothing *)
  let memo3 = Backend.memoize Backend.simulator in
  let o3 =
    Tuner.tune_exn ~backend:(Backend.memoized memo3) ~checkpoint:path config kernel ~points
  in
  Alcotest.(check int) "third run recomputes nothing" 0 (Backend.memo_misses memo3);
  Alcotest.(check int) "third run is all hits" (List.length points) o3.Tuner.journal_hits;
  Alcotest.(check bool) "third run same pick" true (o3.Tuner.best = uninterrupted.Tuner.best);
  Sys.remove path

let test_journal_bound_to_config () =
  let path = tmp_file ".journal" in
  Sys.remove path;
  let kernel = kernel_of "nbody" 0.25 in
  let points = points_of "nbody" in
  let o1 = Tuner.tune_exn ~backend:Backend.static_model ~checkpoint:path config kernel ~points in
  Alcotest.(check int) "journaled" (List.length points) o1.Tuner.journal_misses;
  (* different machine parameters: the journal must not replay *)
  let other =
    Sw_sim.Config.default { p with Sw_arch.Params.mem_bw_bytes_per_s = p.Sw_arch.Params.mem_bw_bytes_per_s /. 2.0 }
  in
  let o2 = Tuner.tune_exn ~backend:Backend.static_model ~checkpoint:path other kernel ~points in
  Alcotest.(check int) "stale journal replays nothing" 0 o2.Tuner.journal_hits;
  Sys.remove path

let test_journal_replays_infeasibility () =
  let path = tmp_file ".journal" in
  Sys.remove path;
  let j1 = Backend.journal ~path config Backend.static_model in
  let kernel = kernel_of "lud" 1.0 in
  let bad = { Sw_swacc.Kernel.grain = 4096; unroll = 1; active_cpes = 64; double_buffer = false } in
  (match Backend.assess (Backend.journaled j1) config kernel bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection");
  Backend.journal_close j1;
  let j2 = Backend.journal ~path config Backend.static_model in
  (match Backend.assess (Backend.journaled j2) config kernel bad with
  | Error { Backend.reason; _ } ->
      Alcotest.(check bool) "reason survives the round-trip" true (String.length reason > 0)
  | Ok _ -> Alcotest.fail "expected replayed rejection");
  Alcotest.(check int) "replayed, not recomputed" 1 (Backend.journal_hits j2);
  Backend.journal_close j2;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Robust search *)

let test_robust_strategy_picks_min_of_worst_case () =
  let e = entry "kmeans" in
  let kernel = kernel_of "kmeans" 0.25 in
  let points = points_of "kmeans" in
  let seeds = [ 1; 2; 3 ] in
  let spec = Fault.harsh in
  (* with k = |space| the robust pick must equal the brute-force
     min-of-worst-case argmin *)
  let o =
    Tuner.tune_exn ~backend:Backend.simulator
      ~strategy:(Search.robust ~k:(List.length points) ~seeds ~spec ())
      ~default:e.Sw_workloads.Registry.variant config kernel ~points
  in
  let plans = List.map (fun seed -> Fault.plan ~spec ~seed config) seeds in
  let worst v =
    List.fold_left
      (fun acc plan ->
        match Backend.assess Backend.simulator plan kernel v with
        | Ok r -> Stdlib.max acc r.Backend.cycles
        | Error _ -> Float.infinity)
      0.0 plans
  in
  let brute =
    List.fold_left
      (fun best pt ->
        let v = Sw_tuning.Space.to_variant pt ~active_cpes:64 in
        let w = worst v in
        match best with Some (_, bw) when bw <= w -> best | _ -> Some (v, w))
      None points
  in
  (match brute with
  | Some (v, w) ->
      Alcotest.(check bool) "argmin = brute-force min-of-worst-case" true (o.Tuner.best = v);
      Alcotest.(check bool) "robust pick has a finite worst case" true (Float.is_finite w);
      (* best_cycles is the tuner's validation re-run on the *nominal*
         machine (quality is always judged there), not the robust score *)
      let nominal =
        Result.get_ok (Backend.assess Backend.simulator config kernel v)
      in
      Alcotest.(check (float 0.0)) "best_cycles = nominal validation run"
        nominal.Backend.cycles o.Tuner.best_cycles
  | None -> Alcotest.fail "space unexpectedly empty");
  (* every shortlisted survivor is robust-scored: the nominal incumbent
     cutoff must not prune points before the worst-case pass sees them *)
  let sink = Sw_obs.Sink.create () in
  let ok =
    Tuner.tune_exn ~backend:Backend.simulator
      ~strategy:(Search.robust ~k:4 ~seeds ~spec ())
      ~default:e.Sw_workloads.Registry.variant ~obs:sink config kernel ~points
  in
  Alcotest.(check int) "all k survivors fully priced" 4 ok.Tuner.evaluated;
  Alcotest.(check (float 0.0)) "k x seeds fault-plan assessments"
    (float_of_int (4 * List.length seeds))
    (Sw_obs.Sink.counter sink "search.robust_assessments");
  (* pool invariance of the robust strategy *)
  let run pool =
    let o =
      Tuner.tune_exn ~backend:Backend.simulator
        ~strategy:(Search.robust ~k:4 ~seeds ~spec ())
        ~default:e.Sw_workloads.Registry.variant ?pool config kernel ~points
    in
    (o.Tuner.best, o.Tuner.best_cycles)
  in
  let baseline = run None in
  Alcotest.(check bool) "pool-invariant" true
    (run (Some (Sw_util.Pool.create ~size:4 ())) = baseline)

let test_robust_strategy_validates () =
  (match Search.robust ~k:2 ~seeds:[] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty seeds accepted");
  match Search.robust ~k:2 ~seeds:[ 1 ] ~quantile:1.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "quantile out of range accepted"

(* ------------------------------------------------------------------ *)
(* Sink async guard (satellite) *)

let test_async_guard_drops_unbalanced () =
  let sink = Sw_obs.Sink.create () in
  let ok = Sw_obs.Sink.async_begin sink ~track:0 ~cat:"dma" ~t0_us:1.0 "balanced" in
  Sw_obs.Sink.async_end sink ~t1_us:2.0 ok;
  Alcotest.(check int) "balanced pair recorded" 1 (Sw_obs.Sink.async_count sink);
  Alcotest.(check int) "nothing dropped yet" 0 (Sw_obs.Sink.async_dropped sink);
  (* unknown id *)
  Sw_obs.Sink.async_end sink ~t1_us:3.0 4242;
  Alcotest.(check int) "unknown end dropped" 1 (Sw_obs.Sink.async_dropped sink);
  (* double end *)
  Sw_obs.Sink.async_end sink ~t1_us:4.0 ok;
  Alcotest.(check int) "double end dropped" 2 (Sw_obs.Sink.async_dropped sink);
  (* end travelling backwards in time *)
  let back = Sw_obs.Sink.async_begin sink ~track:0 ~cat:"dma" ~t0_us:10.0 "backwards" in
  Sw_obs.Sink.async_end sink ~t1_us:5.0 back;
  Alcotest.(check int) "backwards end dropped" 3 (Sw_obs.Sink.async_dropped sink);
  (* still-open operation counts as dropped until ended *)
  let open_id = Sw_obs.Sink.async_begin sink ~track:1 ~cat:"dma" ~t0_us:20.0 "open" in
  Alcotest.(check int) "open begin counted" 4 (Sw_obs.Sink.async_dropped sink);
  Sw_obs.Sink.async_end sink ~t1_us:21.0 open_id;
  Alcotest.(check int) "closing it uncounts" 3 (Sw_obs.Sink.async_dropped sink);
  Alcotest.(check int) "both balanced pairs recorded" 2 (Sw_obs.Sink.async_count sink);
  (* the guard keeps the Chrome export valid *)
  let path = tmp_file ".trace.json" in
  Sw_obs.Chrome.write path sink;
  (match Sw_obs.Json.validate_file path with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("corrupt Chrome export: " ^ msg));
  Sys.remove path

let test_faulty_run_trace_exports_valid_chrome () =
  let sink = Sw_obs.Sink.create () in
  let plan =
    {
      config with
      Sw_sim.Config.faults =
        {
          Sw_sim.Config.no_faults with
          Sw_sim.Config.fault_seed = 11;
          dma_fail_prob = 0.5;
          dma_max_retries = 4;
          dma_backoff_cycles = 32;
        };
    }
  in
  let lowered =
    Sw_swacc.Lower.lower_exn p (kernel_of "kmeans" 0.25)
      (entry "kmeans").Sw_workloads.Registry.variant
  in
  let metrics, _ =
    Sw_obs.Probe.run_traced sink ~name:"faulty:kmeans" plan lowered.Sw_swacc.Lowered.programs
  in
  Alcotest.(check bool) "retries recorded" true (metrics.Sw_sim.Metrics.retries > 0);
  Alcotest.(check (float 0.0)) "retry counter matches metrics"
    (float_of_int metrics.Sw_sim.Metrics.retries)
    (Sw_obs.Sink.counter sink "sim.dma_retries");
  Alcotest.(check int) "no unbalanced async events" 0 (Sw_obs.Sink.async_dropped sink);
  let path = tmp_file ".trace.json" in
  Sw_obs.Chrome.write path sink;
  (match Sw_obs.Json.validate_file path with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("corrupt Chrome export: " ^ msg));
  Sys.remove path

let tests =
  ( "resilience",
    [
      Alcotest.test_case "retry recovers" `Quick test_retry_recovers_from_transient_failures;
      Alcotest.test_case "retry budget exhausts" `Quick test_retry_budget_exhausts;
      Alcotest.test_case "timeout disqualifies" `Quick test_timeout_disqualifies;
      Alcotest.test_case "generous timeout transparent" `Quick
        test_generous_timeout_is_transparent;
      Alcotest.test_case "fallback degrades and counts" `Quick test_fallback_degrades_and_counts;
      Alcotest.test_case "fallback exhaustion typed" `Quick
        test_fallback_exhaustion_is_infeasible_not_raise;
      Alcotest.test_case "fallback never raises on Table II" `Slow
        test_fallback_never_raises_on_table2_under_faults;
      Alcotest.test_case "memo hammered from 4 domains" `Quick test_memo_hammered_from_domains;
      Alcotest.test_case "checkpointed sweep resumes" `Slow
        test_checkpointed_sweep_resumes_bit_identical;
      Alcotest.test_case "journal bound to config" `Quick test_journal_bound_to_config;
      Alcotest.test_case "journal replays infeasibility" `Quick test_journal_replays_infeasibility;
      Alcotest.test_case "robust = min-of-worst-case" `Slow
        test_robust_strategy_picks_min_of_worst_case;
      Alcotest.test_case "robust strategy validates" `Quick test_robust_strategy_validates;
      Alcotest.test_case "async guard drops unbalanced" `Quick test_async_guard_drops_unbalanced;
      Alcotest.test_case "faulty trace exports valid Chrome" `Quick
        test_faulty_run_trace_exports_valid_chrome;
    ] )
