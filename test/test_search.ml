(* Search strategies: pruning must never change the answer.

   The identity properties pin the degenerate strategies to exhaustive
   (shortlist keeping the whole space, successive halving with one
   rung), at several pool sizes; the cutoff unit tests pin the engine's
   early-exit semantics (a cutoff above the true makespan is invisible,
   a cutoff below yields a typed Cutoff and never a wrong metric); the
   Table II test is the paper-level claim — the static model ranks the
   true argmin into the top quarter on every tuning kernel. *)

open Sw_tuning

let p = Sw_arch.Params.default

let config = Sw_sim.Config.default p

let points entry =
  Space.enumerate ~grains:entry.Sw_workloads.Registry.grains
    ~unrolls:entry.Sw_workloads.Registry.unrolls ()

let subset_entries = Array.of_list Sw_workloads.Registry.tuning_subset

(* one explicit default so strategies that prune the first point still
   compare speedups from the same baseline *)
let default_of entry kernel =
  Sw_experiments.Table2.guideline_default p kernel ~grains:entry.Sw_workloads.Registry.grains

let tune ?pool ~strategy entry kernel pts =
  Tuner.tune_exn ~backend:Sw_backend.Backend.simulator ~strategy
    ~default:(default_of entry kernel) ?pool config kernel ~points:pts

let same_answer a b =
  a.Tuner.best = b.Tuner.best
  && a.Tuner.best_cycles = b.Tuner.best_cycles
  && a.Tuner.default_cycles = b.Tuner.default_cycles
  && a.Tuner.speedup = b.Tuner.speedup

(* ------------------------------------------------------------------ *)
(* Identity properties *)

let with_pool size f =
  match size with 0 -> f None | n -> f (Some (Sw_util.Pool.create ~size:n ()))

(* entry index x scale choice x pool size: degenerate strategies return
   the exhaustive answer *)
let prop_degenerate_strategies_identical =
  QCheck.Test.make ~name:"shortlist k=|space| and halving rungs=1 match exhaustive" ~count:12
    QCheck.(
      triple
        (int_range 0 (Array.length subset_entries - 1))
        (int_range 0 1) (int_range 0 2))
    (fun (ei, si, pool_size) ->
      let entry = subset_entries.(ei) in
      let scale = if si = 0 then 0.1 else 0.25 in
      let kernel = entry.Sw_workloads.Registry.build ~scale in
      let pts = points entry in
      with_pool pool_size (fun pool ->
          let exhaustive = tune ?pool ~strategy:Search.exhaustive entry kernel pts in
          let full_shortlist =
            tune ?pool ~strategy:(Search.shortlist ~k:(List.length pts) ()) entry kernel pts
          in
          let one_rung =
            tune ?pool ~strategy:(Search.successive_halving ~rungs:1) entry kernel pts
          in
          same_answer exhaustive full_shortlist
          && same_answer exhaustive one_rung
          (* one rung is the exhaustive code path exactly *)
          && exhaustive.Tuner.evaluated = one_rung.Tuner.evaluated
          && exhaustive.Tuner.infeasible = one_rung.Tuner.infeasible
          && one_rung.Tuner.points_pruned = 0))

let prop_strategies_pool_deterministic =
  QCheck.Test.make ~name:"pruned strategies identical at any pool size" ~count:8
    QCheck.(pair (int_range 0 (Array.length subset_entries - 1)) (int_range 1 4))
    (fun (ei, pool_size) ->
      let entry = subset_entries.(ei) in
      let kernel = entry.Sw_workloads.Registry.build ~scale:0.1 in
      let pts = points entry in
      let k = Stdlib.max 1 (List.length pts / 4) in
      let check strategy =
        let seq = tune ~strategy entry kernel pts in
        with_pool pool_size (fun pool ->
            let par = tune ?pool ~strategy entry kernel pts in
            same_answer seq par
            && seq.Tuner.evaluated = par.Tuner.evaluated
            && seq.Tuner.points_pruned = par.Tuner.points_pruned)
      in
      check (Search.shortlist ~k ()) && check (Search.successive_halving ~rungs:3))

(* ------------------------------------------------------------------ *)
(* Engine cutoff semantics *)

let lowered_kmeans =
  lazy
    (let entry = Sw_workloads.Registry.find_exn "kmeans" in
     let kernel = entry.Sw_workloads.Registry.build ~scale:0.25 in
     Sw_swacc.Lower.lower_exn p kernel entry.Sw_workloads.Registry.variant)

let test_cutoff_above_is_invisible () =
  let lowered = Lazy.force lowered_kmeans in
  let programs = lowered.Sw_swacc.Lowered.programs in
  let full = Sw_sim.Engine.run config programs in
  match
    Sw_sim.Engine.run_budget ~cutoff:(full.Sw_sim.Metrics.cycles +. 1.0) config programs
  with
  | Sw_sim.Engine.Finished m ->
      Alcotest.(check (float 0.0)) "same makespan" full.Sw_sim.Metrics.cycles
        m.Sw_sim.Metrics.cycles;
      Alcotest.(check int) "same transactions" full.Sw_sim.Metrics.transactions
        m.Sw_sim.Metrics.transactions;
      Alcotest.(check int) "same dma requests" full.Sw_sim.Metrics.dma_requests
        m.Sw_sim.Metrics.dma_requests
  | Sw_sim.Engine.Cutoff { at; _ } -> Alcotest.failf "cut off at %g despite slack cutoff" at

let test_cutoff_at_makespan_completes () =
  (* strict semantics: a run that exactly ties the cutoff finishes, so
     an incumbent never loses its earliest-index tie-break *)
  let lowered = Lazy.force lowered_kmeans in
  let programs = lowered.Sw_swacc.Lowered.programs in
  let full = Sw_sim.Engine.run config programs in
  match Sw_sim.Engine.run_budget ~cutoff:full.Sw_sim.Metrics.cycles config programs with
  | Sw_sim.Engine.Finished m ->
      Alcotest.(check (float 0.0)) "same makespan" full.Sw_sim.Metrics.cycles
        m.Sw_sim.Metrics.cycles
  | Sw_sim.Engine.Cutoff { at; _ } -> Alcotest.failf "cut off at %g on a tying cutoff" at

let test_cutoff_below_yields_cutoff () =
  let lowered = Lazy.force lowered_kmeans in
  let programs = lowered.Sw_swacc.Lowered.programs in
  let full = Sw_sim.Engine.run config programs in
  let cutoff = full.Sw_sim.Metrics.cycles /. 2.0 in
  match Sw_sim.Engine.run_budget ~cutoff config programs with
  | Sw_sim.Engine.Finished _ -> Alcotest.fail "finished under a cutoff below the true makespan"
  | Sw_sim.Engine.Cutoff { at; events } ->
      Alcotest.(check bool) "abandoned past the cutoff" true (at > cutoff);
      Alcotest.(check bool) "before the true makespan" true
        (at <= full.Sw_sim.Metrics.cycles);
      Alcotest.(check bool) "made progress" true (events > 0)

let test_event_budget_yields_cutoff () =
  let lowered = Lazy.force lowered_kmeans in
  let programs = lowered.Sw_swacc.Lowered.programs in
  match Sw_sim.Engine.run_budget ~event_budget:10 config programs with
  | Sw_sim.Engine.Finished _ -> Alcotest.fail "a 10-event budget cannot finish kmeans"
  | Sw_sim.Engine.Cutoff { events; _ } ->
      Alcotest.(check int) "stopped at the budget" 10 events

let test_backend_cutoff_never_wrong_metric () =
  (* through the backend: Assessed when the cutoff is slack, Cut_off
     (never a fabricated verdict) when it is tight *)
  let entry = Sw_workloads.Registry.find_exn "kmeans" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:0.25 in
  let variant = entry.Sw_workloads.Registry.variant in
  let backend = Sw_backend.Backend.simulator in
  let truth =
    match Sw_backend.Backend.assess backend config kernel variant with
    | Ok v -> v.Sw_backend.Backend.cycles
    | Error _ -> Alcotest.fail "kmeans default variant must be feasible"
  in
  (match Sw_backend.Backend.assess_budget ~cutoff:(truth +. 1.0) backend config kernel variant with
  | Sw_backend.Backend.Assessed v ->
      Alcotest.(check (float 0.0)) "slack cutoff, same cycles" truth v.Sw_backend.Backend.cycles
  | _ -> Alcotest.fail "slack cutoff must assess in full");
  match Sw_backend.Backend.assess_budget ~cutoff:(truth /. 2.0) backend config kernel variant with
  | Sw_backend.Backend.Cut_off { at; cost } ->
      Alcotest.(check bool) "cut past the cutoff" true (at > truth /. 2.0);
      Alcotest.(check bool) "sunk machine time billed" true
        (cost.Sw_backend.Backend.machine_us > 0.0)
  | Sw_backend.Backend.Assessed _ -> Alcotest.fail "tight cutoff must cut off"
  | Sw_backend.Backend.Infeasible _ -> Alcotest.fail "feasible variant rejected"

(* ------------------------------------------------------------------ *)
(* The paper-level claim: model-ranked top-quarter shortlist returns
   the exhaustive argmin on every Table II tuning kernel *)

let test_shortlist_same_best_on_table2 () =
  List.iter
    (fun (entry : Sw_workloads.Registry.entry) ->
      let kernel = entry.Sw_workloads.Registry.build ~scale:0.25 in
      let pts = points entry in
      let k = Stdlib.max 1 (List.length pts / 4) in
      let exhaustive = tune ~strategy:Search.exhaustive entry kernel pts in
      let shortlist = tune ~strategy:(Search.shortlist ~k ()) entry kernel pts in
      Alcotest.(check bool)
        (Printf.sprintf "%s: top-quarter shortlist finds the argmin" entry.name)
        true
        (same_answer exhaustive shortlist);
      Alcotest.(check bool)
        (Printf.sprintf "%s: shortlist pruned something" entry.name)
        true
        (shortlist.Tuner.points_pruned > 0))
    Sw_workloads.Registry.tuning_subset

let test_shortlist_cheaper_machine_time () =
  let entry = Sw_workloads.Registry.find_exn "kmeans" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:0.25 in
  let pts = points entry in
  let k = Stdlib.max 1 (List.length pts / 4) in
  let exhaustive = tune ~strategy:Search.exhaustive entry kernel pts in
  let shortlist = tune ~strategy:(Search.shortlist ~k ()) entry kernel pts in
  Alcotest.(check bool) "at least 3x less simulated time" true
    (shortlist.Tuner.machine_time_us *. 3.0 <= exhaustive.Tuner.machine_time_us)

(* ------------------------------------------------------------------ *)
(* Lowering cache *)

let test_lower_cache_hits () =
  Sw_swacc.Lower.clear_cache ();
  let entry = Sw_workloads.Registry.find_exn "lud" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:0.5 in
  let variant = entry.Sw_workloads.Registry.variant in
  let a = Sw_swacc.Lower.lower_cached_exn p kernel variant in
  let h0, m0 = Sw_swacc.Lower.cache_stats () in
  let b = Sw_swacc.Lower.lower_cached_exn p kernel variant in
  let h1, _ = Sw_swacc.Lower.cache_stats () in
  Alcotest.(check bool) "second lowering hits" true (h1 > h0);
  Alcotest.(check bool) "a miss was recorded first" true (m0 > 0);
  Alcotest.(check bool) "cached result is the same value" true (a == b)

let test_lower_cache_physical_identity () =
  (* coalescing rewrites the kernel but keeps its name: the cache must
     key on physical identity, not the name, or it would serve the
     uncoalesced programs for the coalesced kernel *)
  Sw_swacc.Lower.clear_cache ();
  let entry = Sw_workloads.Registry.find_exn "bfs" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:0.1 in
  let variant = entry.Sw_workloads.Registry.variant in
  let plain = Sw_swacc.Lower.lower_cached_exn p kernel variant in
  let coalesced_kernel = Sw_swacc.Kernel.coalesce_gloads kernel ~factor:4 in
  let coalesced = Sw_swacc.Lower.lower_cached_exn p coalesced_kernel variant in
  Alcotest.(check bool) "coalesced lowering is not the cached plain one" true
    (not (plain == coalesced))

(* ------------------------------------------------------------------ *)
(* Ranker /= verifier cost accounting: the ranking pass is billed to
   the outcome even when the verifying backend is machine-free, and an
   adaptive search is exhaustive when its first rung is the whole
   space *)

let test_rank_backend_billed_separately () =
  let entry = Sw_workloads.Registry.find_exn "kmeans" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:0.1 in
  let pts = points entry in
  let tune_model strategy =
    Tuner.tune_exn ~backend:Sw_backend.Backend.static_model ~strategy
      ~default:(default_of entry kernel) config kernel ~points:pts
  in
  let ranked =
    tune_model (Search.shortlist ~rank:Sw_backend.Backend.simulator ~k:4 ())
  in
  (* the simulator ranked, so machine time was spent — all of it in the
     ranking pass, because the static model verifies for free *)
  Alcotest.(check bool) "rank pass billed" true (ranked.Tuner.rank_machine_us > 0.0);
  Alcotest.(check (float 0.0)) "all machine time is the rank pass"
    ranked.Tuner.rank_machine_us ranked.Tuner.machine_time_us;
  Alcotest.(check bool) "rank host time recorded" true (ranked.Tuner.rank_host_s >= 0.0);
  (* a free ranker on the same verifier bills no machine time at all *)
  let free = tune_model (Search.shortlist ~k:4 ()) in
  Alcotest.(check (float 0.0)) "static-ranked static verify is machine-free" 0.0
    free.Tuner.machine_time_us;
  (* sim-ranked model-verified finds the same best as exhaustive model:
     kmeans's simulator ranking places the model argmin in the top 4 *)
  let exhaustive = tune_model Search.exhaustive in
  Alcotest.(check bool) "same argmin" true (ranked.Tuner.best = exhaustive.Tuner.best)

let prop_adaptive_whole_space_is_exhaustive =
  QCheck.Test.make ~name:"adaptive k=|space| matches exhaustive" ~count:8
    QCheck.(pair (int_range 0 (Array.length subset_entries - 1)) (int_range 0 2))
    (fun (ei, pool_size) ->
      let entry = subset_entries.(ei) in
      let kernel = entry.Sw_workloads.Registry.build ~scale:0.1 in
      let pts = points entry in
      with_pool pool_size (fun pool ->
          let exhaustive = tune ?pool ~strategy:Search.exhaustive entry kernel pts in
          let adaptive =
            tune ?pool
              ~strategy:(Search.adaptive_shortlist ~k:(List.length pts) ())
              entry kernel pts
          in
          same_answer exhaustive adaptive))

let prop_adaptive_pool_deterministic =
  QCheck.Test.make ~name:"adaptive identical at any pool size" ~count:8
    QCheck.(pair (int_range 0 (Array.length subset_entries - 1)) (int_range 1 4))
    (fun (ei, pool_size) ->
      let entry = subset_entries.(ei) in
      let kernel = entry.Sw_workloads.Registry.build ~scale:0.1 in
      let pts = points entry in
      let sequential =
        tune ~strategy:(Search.adaptive_shortlist ~k:3 ()) entry kernel pts
      in
      with_pool pool_size (fun pool ->
          let pooled =
            tune ?pool ~strategy:(Search.adaptive_shortlist ~k:3 ()) entry kernel pts
          in
          same_answer sequential pooled
          && sequential.Tuner.points_pruned = pooled.Tuner.points_pruned
          && sequential.Tuner.evaluated = pooled.Tuner.evaluated))

let test_adaptive_same_best_on_table2 () =
  (* the adaptive search with the default static ranker reproduces the
     exhaustive argmin on every tuning kernel, like the fixed-K
     shortlist, without K having to be chosen per kernel *)
  List.iter
    (fun (entry : Sw_workloads.Registry.entry) ->
      let kernel = entry.Sw_workloads.Registry.build ~scale:0.25 in
      let pts = points entry in
      let exhaustive = tune ~strategy:Search.exhaustive entry kernel pts in
      let adaptive =
        tune ~strategy:(Search.adaptive_shortlist ~k:6 ()) entry kernel pts
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: adaptive finds the argmin" entry.name)
        true
        (same_answer exhaustive adaptive))
    Sw_workloads.Registry.tuning_subset

let tests =
  ( "search",
    [
      QCheck_alcotest.to_alcotest prop_degenerate_strategies_identical;
      QCheck_alcotest.to_alcotest prop_strategies_pool_deterministic;
      Alcotest.test_case "cutoff above the makespan is invisible" `Quick
        test_cutoff_above_is_invisible;
      Alcotest.test_case "cutoff at the makespan completes (strict)" `Quick
        test_cutoff_at_makespan_completes;
      Alcotest.test_case "cutoff below the makespan yields Cutoff" `Quick
        test_cutoff_below_yields_cutoff;
      Alcotest.test_case "event budget yields Cutoff" `Quick test_event_budget_yields_cutoff;
      Alcotest.test_case "backend cutoff never fabricates a verdict" `Quick
        test_backend_cutoff_never_wrong_metric;
      Alcotest.test_case "table2: shortlist argmin matches exhaustive" `Quick
        test_shortlist_same_best_on_table2;
      Alcotest.test_case "shortlist cuts kmeans machine time 3x" `Quick
        test_shortlist_cheaper_machine_time;
      Alcotest.test_case "ranking pass billed when ranker /= verifier" `Quick
        test_rank_backend_billed_separately;
      QCheck_alcotest.to_alcotest prop_adaptive_whole_space_is_exhaustive;
      QCheck_alcotest.to_alcotest prop_adaptive_pool_deterministic;
      Alcotest.test_case "table2: adaptive argmin matches exhaustive" `Quick
        test_adaptive_same_best_on_table2;
      Alcotest.test_case "lowering cache hits on repeat" `Quick test_lower_cache_hits;
      Alcotest.test_case "lowering cache keys on physical kernel" `Quick
        test_lower_cache_physical_identity;
    ] )
