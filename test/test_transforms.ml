(* Kernel-level transforms: vectorization and Gload coalescing. *)

open Sw_swacc

let p = Sw_arch.Params.default

let config = Sw_sim.Config.default p

let simulate kernel variant =
  (Sw_sim.Engine.run config (Lower.lower_exn p kernel variant).Lowered.programs)
    .Sw_sim.Metrics.cycles

(* vectorization *)

let test_vectorize_speeds_compute () =
  let e = Sw_workloads.Registry.find_exn "kmeans" in
  let kernel = e.Sw_workloads.Registry.build ~scale:0.5 in
  let scalar = simulate kernel e.Sw_workloads.Registry.variant in
  let vector = simulate (Kernel.vectorize kernel ~width:4) e.Sw_workloads.Registry.variant in
  Alcotest.(check bool)
    (Printf.sprintf "vec4 at least 2x faster (%.0f vs %.0f)" scalar vector)
    true (vector *. 2.0 < scalar)

let test_vectorize_keeps_dma () =
  let e = Sw_workloads.Registry.find_exn "kmeans" in
  let kernel = e.Sw_workloads.Registry.build ~scale:0.5 in
  let s1 = (Lower.lower_exn p kernel e.Sw_workloads.Registry.variant).Lowered.summary in
  let s4 =
    (Lower.lower_exn p (Kernel.vectorize kernel ~width:4) e.Sw_workloads.Registry.variant)
      .Lowered.summary
  in
  Alcotest.(check bool) "same DMA groups" true (s1.Lowered.dma_groups = s4.Lowered.dma_groups);
  Alcotest.(check int) "width recorded" 4 s4.Lowered.vector_width

let test_vectorize_quarter_trips () =
  let e = Sw_workloads.Registry.find_exn "lud" in
  let kernel = e.Sw_workloads.Registry.build ~scale:0.5 in
  let trips_of k =
    let s = (Lower.lower_exn p k e.Sw_workloads.Registry.variant).Lowered.summary in
    List.fold_left (fun acc (c : Lowered.compute_summary) -> acc + c.Lowered.trips) 0
      s.Lowered.computes
  in
  let t1 = trips_of kernel and t4 = trips_of (Kernel.vectorize kernel ~width:4) in
  Alcotest.(check bool)
    (Printf.sprintf "trips quartered (%d vs %d)" t1 t4)
    true
    (abs ((t1 / 4) - t4) <= 1)

let test_vectorize_model_tracks () =
  let e = Sw_workloads.Registry.find_exn "srad" in
  let kernel = Kernel.vectorize (e.Sw_workloads.Registry.build ~scale:0.5) ~width:4 in
  let lowered = Lower.lower_exn p kernel e.Sw_workloads.Registry.variant in
  let row = Sw_backend.Accuracy.evaluate config lowered in
  Alcotest.(check bool)
    (Printf.sprintf "error %.1f%% under 10%%" (Sw_backend.Accuracy.error row *. 100.0))
    true
    (Sw_backend.Accuracy.error row < 0.10)

let test_vectorize_rejects () =
  let e = Sw_workloads.Registry.find_exn "lud" in
  let kernel = e.Sw_workloads.Registry.build ~scale:0.5 in
  match Kernel.vectorize kernel ~width:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width 3 should be rejected"

let test_roofline_vector_peak () =
  let e = Sw_workloads.Registry.find_exn "nbody" in
  let kernel = e.Sw_workloads.Registry.build ~scale:0.5 in
  let roof w =
    let k = Kernel.vectorize kernel ~width:w in
    Swpm.Roofline.analyze p (Lower.lower_exn p k e.Sw_workloads.Registry.variant).Lowered.summary
  in
  let r1 = roof 1 and r4 = roof 4 in
  Alcotest.(check (float 1e-6)) "peak scales with lanes"
    (4.0 *. r1.Swpm.Roofline.peak_flops_per_cycle)
    r4.Swpm.Roofline.peak_flops_per_cycle;
  (* total algorithmic flops are invariant: quarter the trips, four lanes *)
  Alcotest.(check bool) "flops invariant" true
    (Float.abs (r4.Swpm.Roofline.flops -. r1.Swpm.Roofline.flops)
    < 0.02 *. r1.Swpm.Roofline.flops)

(* coalescing *)

let test_coalesce_reduces_gloads () =
  let e = Sw_workloads.Registry.find_exn "bfs" in
  let kernel = e.Sw_workloads.Registry.build ~scale:0.5 in
  let gloads k =
    (Lower.lower_exn p k e.Sw_workloads.Registry.variant).Lowered.summary.Lowered.gload_count
  in
  let g1 = gloads kernel and g4 = gloads (Kernel.coalesce_gloads kernel ~factor:4) in
  Alcotest.(check bool) (Printf.sprintf "about a quarter (%d vs %d)" g1 g4) true
    (g4 <= (g1 / 4) + (g1 / 8))

let test_coalesce_speeds_up () =
  let e = Sw_workloads.Registry.find_exn "bfs" in
  let kernel = e.Sw_workloads.Registry.build ~scale:0.5 in
  let base = simulate kernel e.Sw_workloads.Registry.variant in
  let co = simulate (Kernel.coalesce_gloads kernel ~factor:4) e.Sw_workloads.Registry.variant in
  Alcotest.(check bool) "at least 2x on gload-bound bfs" true (co *. 2.0 < base)

let test_coalesce_limits () =
  let e = Sw_workloads.Registry.find_exn "b+tree" in
  let kernel = e.Sw_workloads.Registry.build ~scale:0.5 in
  (* 32-byte nodes cannot merge further *)
  (match Kernel.coalesce_gloads kernel ~factor:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "32B x2 exceeds the gload limit");
  match Kernel.coalesce_gloads kernel ~factor:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "factor 0 rejected"

let test_coalesce_identity () =
  let e = Sw_workloads.Registry.find_exn "bfs" in
  let kernel = e.Sw_workloads.Registry.build ~scale:0.5 in
  Alcotest.(check bool) "factor 1 is identity" true (Kernel.coalesce_gloads kernel ~factor:1 == kernel);
  let no_gloads = Sw_workloads.Vadd.kernel ~scale:0.1 in
  Alcotest.(check bool) "no gloads: unchanged" true
    (Kernel.coalesce_gloads no_gloads ~factor:4 == no_gloads)

let tests =
  ( "transforms",
    [
      Alcotest.test_case "vectorize speeds compute" `Quick test_vectorize_speeds_compute;
      Alcotest.test_case "vectorize keeps DMA" `Quick test_vectorize_keeps_dma;
      Alcotest.test_case "vectorize quarters trips" `Quick test_vectorize_quarter_trips;
      Alcotest.test_case "model tracks vector code" `Quick test_vectorize_model_tracks;
      Alcotest.test_case "vectorize rejects width 3" `Quick test_vectorize_rejects;
      Alcotest.test_case "roofline vector peak" `Quick test_roofline_vector_peak;
      Alcotest.test_case "coalesce reduces gloads" `Quick test_coalesce_reduces_gloads;
      Alcotest.test_case "coalesce speeds up bfs" `Quick test_coalesce_speeds_up;
      Alcotest.test_case "coalesce limits" `Quick test_coalesce_limits;
      Alcotest.test_case "coalesce identity" `Quick test_coalesce_identity;
    ] )
