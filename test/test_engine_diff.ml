(* Differential tests: {!Engine} (calendar queue, compiled programs,
   DMA pool) against {!Engine_ref} (the preserved original).  Every
   observable must be *bit-identical* — full [Metrics.t] records
   including float arrays, span/request/retry trace streams, cutoff
   points, event counts, exceptions — across random programs and every
   fault class.  Plus the allocation guarantee: with no observers
   attached, the optimized engine's marginal minor-heap cost per event
   is ~zero. *)

open Sw_isa
open Sw_arch
open Sw_sim

let p = Params.default

let fadd dst srcs = Instr.make Instr.Fadd ~dst srcs

let blocks =
  [|
    [| fadd 1 [ 1; 0 ] |];
    [| fadd 1 [ 1; 0 ]; fadd 2 [ 2; 0 ]; Instr.make Instr.Ialu ~dst:3 [] |];
    [| Instr.make Instr.Fmul ~dst:4 [ 1; 2 ]; fadd 5 [ 4; 3 ] |];
  |]

(* Deterministic random programs: computes over a small block set,
   tagged DMAs, waits, gloads, nested repeats (including valid
   empty-body repeats, which still cost loop overhead per iteration).
   A trailing [Dma_wait_all] keeps every tag awaited, so the programs
   always validate. *)
let gen_program prng =
  let module Prng = Sw_util.Prng in
  let rec gen_items depth budget =
    List.concat
      (List.init budget (fun _ ->
           match Prng.int prng (if depth >= 2 then 5 else 6) with
           | 0 ->
               [ Program.Compute
                   { block = blocks.(Prng.int prng (Array.length blocks));
                     trips = 1 + Prng.int prng 6 } ]
           | 1 ->
               let tag = Prng.int prng 3 in
               [ Program.Dma_issue
                   { dir = Program.Get;
                     accesses =
                       [ Mem_req.contiguous ~addr:(256 * Prng.int prng 4096)
                           ~bytes:(256 * (1 + Prng.int prng 12)) ];
                     tag } ]
           | 2 -> [ Program.Dma_wait (Prng.int prng 3) ]
           | 3 -> [ Program.Dma_wait_all ]
           | 4 -> [ Program.Gload { addr = 8 * Prng.int prng 100000; bytes = 8 } ]
           | _ ->
               let body = Array.of_list (gen_items (depth + 1) (Prng.int prng 3)) in
               [ Program.Repeat { trips = 1 + Prng.int prng 3; body } ]))
  in
  Array.of_list (gen_items 0 (2 + Prng.int prng 6) @ [ Program.Dma_wait_all ])

let gen_fleet seed n =
  let prng = Sw_util.Prng.create seed in
  Array.init n (fun _ -> gen_program prng)

let faulty =
  {
    Config.dma_fail_prob = 0.3;
    dma_max_retries = 4;
    dma_backoff_cycles = 50;
    fault_seed = 11;
    stragglers = [ (1, 1.5); (3, 2.0) ];
    mc_throttles = [ (0, { Config.from_cycle = 0.0; until_cycle = 5000.0; bw_factor = 0.5 }) ];
  }

let configs =
  [
    ("ideal", Config.ideal p);
    ("default", Config.default p);
    ("jitter", { (Config.default p) with Config.start_jitter = 32; seed = 7 });
    ("multi-cg", Config.ideal (Params.with_cgs p 2));
    ("faulty", { (Config.default p) with Config.faults = faulty });
  ]

let check_metrics label (a : Metrics.t) (b : Metrics.t) =
  Alcotest.(check bool) (label ^ ": metrics bit-identical") true (a = b)

let test_metrics_identical () =
  List.iter
    (fun (name, cfg) ->
      List.iter
        (fun seed ->
          let progs = gen_fleet seed 16 in
          check_metrics
            (Printf.sprintf "%s seed %d" name seed)
            (Engine_ref.run cfg progs) (Engine.run cfg progs))
        [ 0; 1; 2; 3; 4; 5; 6; 7 ])
    configs

let test_traces_identical () =
  List.iter
    (fun (name, cfg) ->
      let progs = gen_fleet 13 8 in
      let m1, s1, q1, r1 = Engine_ref.run_traced_full cfg progs in
      let m2, s2, q2, r2 = Engine.run_traced_full cfg progs in
      check_metrics name m1 m2;
      Alcotest.(check bool) (name ^ ": spans identical") true (s1 = s2);
      Alcotest.(check bool) (name ^ ": dma reqs identical") true (q1 = q2);
      Alcotest.(check bool) (name ^ ": retries identical") true (r1 = r2))
    configs

(* the two engines declare distinct (but isomorphic) run_result types;
   fold both into one shape for comparison *)
let ref_result = function
  | Engine_ref.Finished m -> `Finished m
  | Engine_ref.Cutoff { at; events } -> `Cutoff (at, events)

let opt_result = function
  | Engine.Finished m -> `Finished m
  | Engine.Cutoff { at; events } -> `Cutoff (at, events)

let test_budget_identical () =
  let cfg = Config.default p in
  let progs = gen_fleet 21 16 in
  let full = Engine.run cfg progs in
  (* a strict-cutoff abandon and an event-budget abandon must stop at
     the same event with the same clock in both engines *)
  List.iter
    (fun cutoff ->
      let a = ref_result (Engine_ref.run_budget ~cutoff cfg progs) in
      let b = opt_result (Engine.run_budget ~cutoff cfg progs) in
      Alcotest.(check bool)
        (Printf.sprintf "cutoff %.0f identical" cutoff)
        true (a = b))
    [ 0.0; full.Metrics.cycles /. 3.0; full.Metrics.cycles /. 2.0; full.Metrics.cycles ];
  List.iter
    (fun event_budget ->
      let a = ref_result (Engine_ref.run_budget ~event_budget cfg progs) in
      let b = opt_result (Engine.run_budget ~event_budget cfg progs) in
      Alcotest.(check bool)
        (Printf.sprintf "budget %d identical" event_budget)
        true (a = b))
    [ 0; 1; 7; full.Metrics.events / 2; full.Metrics.events; full.Metrics.events + 100 ]

let test_event_limit_identical () =
  let cfg = { (Config.default p) with Config.max_events = 100 } in
  let progs = gen_fleet 3 16 in
  let outcome run = match run cfg progs with m -> Ok m.Metrics.events | exception e -> Error e in
  match (outcome Engine_ref.run, outcome Engine.run) with
  | Error Engine_ref.Event_limit, Error Engine.Event_limit -> ()
  | _ -> Alcotest.fail "both engines must hit Event_limit"

let test_rejections_identical () =
  let msg run cfg progs =
    match run cfg progs with
    | exception Invalid_argument m -> m
    | exception Config.Invalid_config m -> m
    | _ -> "no error"
  in
  let cases =
    [
      ("no programs", Config.ideal p, ([||] : Program.t array));
      ("too many", Config.ideal p, Array.make 65 [| Program.Gload { addr = 0; bytes = 8 } |]);
      ( "invalid program",
        Config.ideal p,
        [| [| Program.Compute { block = [||]; trips = 1 } |] |] );
    ]
  in
  List.iter
    (fun (name, cfg, progs) ->
      Alcotest.(check string) name (msg Engine_ref.run cfg progs) (msg Engine.run cfg progs))
    cases

let test_empty_body_repeat_identical () =
  (* a Repeat whose body compiles to nothing still costs loop_overhead
     per iteration — the one place naive dead-code elimination in the
     lowering would silently diverge from the reference *)
  let prog =
    [| Program.Repeat { trips = 5; body = [| Program.Repeat { trips = 3; body = [||] } |] } |]
  in
  List.iter
    (fun (name, cfg) -> check_metrics name (Engine_ref.run cfg [| prog |]) (Engine.run cfg [| prog |]))
    [ ("default", Config.default p); ("ideal", Config.ideal p) ]

let test_shared_cache_traffic_identical () =
  (* cold program lowering must hit the process-wide block-cost cache
     exactly as often as the reference's lazy per-run table: once per
     structurally-distinct block per run.  A warm run reuses whole
     lowered programs from the compile cache and must not touch the
     block-cost cache at all. *)
  let progs = gen_fleet 5 8 in
  let cfg = Config.ideal p in
  let cold run =
    Engine.clear_compile_cache ();
    Schedule.clear_cache ();
    ignore (run cfg progs);
    Schedule.cache_stats ()
  in
  let ref_traffic = cold Engine_ref.run in
  let opt_traffic = cold Engine.run in
  Alcotest.(check bool) "cold cache traffic identical" true (ref_traffic = opt_traffic);
  let h0, m0 = Schedule.cache_stats () in
  ignore (Engine.run cfg progs);
  let h1, m1 = Schedule.cache_stats () in
  Alcotest.(check bool) "warm run adds no block-cost traffic" true (h1 - h0 = 0 && m1 - m0 = 0)

let test_no_obs_run_allocates_nothing_per_event () =
  (* Marginal minor-heap cost per event, with per-run setup cancelled
     by differencing a short and a long run of the same fleet shape.
     The reference engine spends ~30+ words/event (heap entries, boxed
     events, req records, pop options, boxed floats); the optimized
     engine's steady state must be ~0.  The bound of 1 word/event
     leaves slack only for pool/arena growth noise. *)
  let fleet trips =
    Array.init 64 (fun i ->
        [|
          Program.Repeat
            {
              trips;
              body =
                [|
                  Program.Dma_issue
                    {
                      dir = Program.Get;
                      accesses = [ Mem_req.contiguous ~addr:(i * 4096) ~bytes:2048 ];
                      tag = 0;
                    };
                  Program.Compute { block = blocks.(1); trips = 4 };
                  Program.Dma_wait 0;
                |];
            };
        |])
  in
  let cfg = Config.default p in
  let small = fleet 8 and big = fleet 264 in
  (* warm the schedule and compile caches for both fleets so the
     measured runs are pure steady state *)
  ignore (Engine.run cfg small);
  ignore (Engine.run cfg big);
  let measure progs =
    let before = Gc.minor_words () in
    let m = Engine.run cfg progs in
    (Gc.minor_words () -. before, m.Metrics.events)
  in
  let w_small, e_small = measure small in
  let w_big, e_big = measure big in
  let marginal = (w_big -. w_small) /. float_of_int (e_big - e_small) in
  Alcotest.(check bool)
    (Printf.sprintf "marginal words/event %.4f < 1.0" marginal)
    true (marginal < 1.0)

let tests =
  ( "engine-diff",
    [
      Alcotest.test_case "metrics bit-identical across configs" `Quick test_metrics_identical;
      Alcotest.test_case "traces bit-identical" `Quick test_traces_identical;
      Alcotest.test_case "cutoff/budget bit-identical" `Quick test_budget_identical;
      Alcotest.test_case "event limit identical" `Quick test_event_limit_identical;
      Alcotest.test_case "rejections identical" `Quick test_rejections_identical;
      Alcotest.test_case "empty-body repeat identical" `Quick test_empty_body_repeat_identical;
      Alcotest.test_case "shared cache traffic identical" `Quick test_shared_cache_traffic_identical;
      Alcotest.test_case "no-obs run allocates ~0 per event" `Quick
        test_no_obs_run_allocates_nothing_per_event;
    ] )
