module Accuracy = Sw_backend.Accuracy

let p = Sw_arch.Params.default

let config = Sw_sim.Config.default p

let lowered_vadd () =
  let kernel = Sw_workloads.Vadd.kernel ~scale:0.125 in
  Sw_swacc.Lower.lower_exn p kernel Sw_workloads.Vadd.variant

let test_evaluate () =
  let row = Accuracy.evaluate config (lowered_vadd ()) in
  Alcotest.(check string) "name from kernel" "vector-add" row.Accuracy.name;
  Alcotest.(check bool) "error under 5%" true (Accuracy.error row < 0.05)

let test_evaluate_named () =
  let row = Accuracy.evaluate ~name:"custom" config (lowered_vadd ()) in
  Alcotest.(check string) "override name" "custom" row.Accuracy.name

let test_mape_and_max () =
  let r1 = Accuracy.evaluate config (lowered_vadd ()) in
  let rows = [ r1; r1 ] in
  Alcotest.(check (float 1e-9)) "mape of identical rows" (Accuracy.error r1) (Accuracy.mape rows);
  Alcotest.(check (float 1e-9)) "max of identical rows" (Accuracy.error r1) (Accuracy.max_error rows)

let test_table_renders () =
  let row = Accuracy.evaluate config (lowered_vadd ()) in
  let s = Format.asprintf "%a" Accuracy.pp_table [ row ] in
  Alcotest.(check bool) "mentions the kernel" true
    (let ok = ref false in
     String.iteri
       (fun i _ ->
         if i + 10 <= String.length s && String.sub s i 10 = "vector-add" then ok := true)
       s;
     !ok)

(* The repository's headline claim, as a regression test: the model
   stays accurate on the whole suite at a reduced scale. *)
let test_suite_accuracy_regression () =
  (* full evaluation scale, the Fig. 6 configuration *)
  let rows = Sw_experiments.Fig6.run ~scale:1.0 () in
  let avg = Accuracy.mape rows in
  let worst = Accuracy.max_error rows in
  Alcotest.(check bool) (Printf.sprintf "average error %.1f%% < 6%%" (avg *. 100.0)) true (avg < 0.06);
  Alcotest.(check bool) (Printf.sprintf "max error %.1f%% < 12%%" (worst *. 100.0)) true (worst < 0.12)

let test_regular_kernels_tighter () =
  let rows = Sw_experiments.Fig6.run ~scale:1.0 () in
  let regular =
    List.filter
      (fun (r : Accuracy.row) ->
        match Sw_workloads.Registry.find r.Accuracy.name with
        | Some e -> e.Sw_workloads.Registry.kind = Sw_workloads.Registry.Regular
        | None -> false)
      rows
  in
  Alcotest.(check bool) "regular kernels average under 6%" true (Accuracy.mape regular < 0.06)

let tests =
  ( "accuracy",
    [
      Alcotest.test_case "evaluate" `Quick test_evaluate;
      Alcotest.test_case "evaluate with name" `Quick test_evaluate_named;
      Alcotest.test_case "mape and max" `Quick test_mape_and_max;
      Alcotest.test_case "table renders" `Quick test_table_renders;
      Alcotest.test_case "suite accuracy regression" `Slow test_suite_accuracy_regression;
      Alcotest.test_case "regular kernels tighter" `Slow test_regular_kernels_tighter;
    ] )
