(* The calendar queue is the simulator's event queue; its one contract
   is to pop in exactly {!Sw_util.Heap}'s order — (time, global push
   sequence) — on any interleaving of pushes and pops, timestamp ties
   included.  The qcheck properties here drive both structures through
   the same random schedules and demand identical pop streams. *)

open Sw_util

let test_empty () =
  let q = Calendar_queue.create () in
  Alcotest.(check bool) "empty" true (Calendar_queue.is_empty q);
  Alcotest.(check int) "size 0" 0 (Calendar_queue.size q);
  Alcotest.(check bool) "pop None" true (Calendar_queue.pop q = None);
  Alcotest.(check bool) "peek None" true (Calendar_queue.peek q = None)

let test_ordering () =
  let q = Calendar_queue.create () in
  List.iter (fun (t, c) -> Calendar_queue.push q t c) [ (3.0, 3); (1.0, 1); (2.0, 2) ];
  let popped =
    List.init 3 (fun _ -> match Calendar_queue.pop q with Some (_, c) -> c | None -> -1)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] popped

let test_fifo_ties () =
  let q = Calendar_queue.create () in
  List.iter (fun c -> Calendar_queue.push q 1.0 c) [ 1; 2; 3; 4 ];
  let popped =
    List.init 4 (fun _ -> match Calendar_queue.pop q with Some (_, c) -> c | None -> -1)
  in
  Alcotest.(check (list int)) "insertion order among equal times" [ 1; 2; 3; 4 ] popped

let test_buffer_api () =
  let q = Calendar_queue.create () in
  let buf = [| 0.0 |] in
  buf.(0) <- 7.5;
  Calendar_queue.push_ref q buf 42;
  buf.(0) <- 2.5;
  Calendar_queue.push_ref q buf 7;
  let c = Calendar_queue.peek_into q buf in
  Alcotest.(check int) "peek code" 7 c;
  Alcotest.(check (float 0.0)) "peek time" 2.5 buf.(0);
  Alcotest.(check int) "peek keeps size" 2 (Calendar_queue.size q);
  let c = Calendar_queue.pop_into q buf in
  Alcotest.(check int) "pop code" 7 c;
  Alcotest.(check (float 0.0)) "pop time" 2.5 buf.(0);
  let c = Calendar_queue.pop_into q buf in
  Alcotest.(check int) "second pop" 42 c;
  Alcotest.(check (float 0.0)) "second time" 7.5 buf.(0);
  Alcotest.(check int) "drained pop" (-1) (Calendar_queue.pop_into q buf)

let test_clear () =
  let q = Calendar_queue.create () in
  Calendar_queue.push q 1.0 1;
  Calendar_queue.push q 2.0 2;
  Calendar_queue.clear q;
  Alcotest.(check bool) "cleared" true (Calendar_queue.is_empty q);
  (* replays after a clear order like a fresh queue (seq reset) *)
  Calendar_queue.push q 5.0 10;
  Calendar_queue.push q 5.0 11;
  Alcotest.(check bool) "fifo after clear" true (Calendar_queue.pop q = Some (5.0, 10))

let test_rejects_non_finite () =
  let q = Calendar_queue.create () in
  (match Calendar_queue.push q nan 1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument for NaN time");
  (match Calendar_queue.push q infinity 1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument for infinite time");
  (* the rejected pushes must not leak arena slots or corrupt order *)
  Calendar_queue.push q 1.0 1;
  Alcotest.(check bool) "still works" true (Calendar_queue.pop q = Some (1.0, 1))

let test_rebuild_growth () =
  (* push far past the initial bucket count to force grow rebuilds,
     then drain to force shrink rebuilds; order must survive both *)
  let q = Calendar_queue.create ~capacity:4 () in
  let n = 500 in
  for i = 0 to n - 1 do
    Calendar_queue.push q (float_of_int ((i * 7919) mod 97)) i
  done;
  let last = ref neg_infinity in
  for _ = 1 to n do
    match Calendar_queue.pop q with
    | Some (t, _) ->
        Alcotest.(check bool) "non-decreasing" true (t >= !last);
        last := t
    | None -> Alcotest.fail "queue drained early"
  done;
  Alcotest.(check bool) "drained" true (Calendar_queue.is_empty q)

let test_simulation_shape () =
  (* the engine's shape: an advancing time frontier with pushes a
     bounded horizon ahead — exactly where calendar queues must not
     degrade or misorder *)
  let q = Calendar_queue.create () in
  let prng = Prng.create 42 in
  let clock = ref 0.0 in
  for i = 0 to 63 do
    Calendar_queue.push q 0.0 i
  done;
  let popped = ref 0 in
  let rec step () =
    match Calendar_queue.pop q with
    | None -> ()
    | Some (t, _) ->
        Alcotest.(check bool) "frontier advances" true (t >= !clock);
        clock := t;
        incr popped;
        if !popped < 5_000 then begin
          if Prng.float prng 1.0 < 0.9 then
            Calendar_queue.push q (t +. Prng.float prng 300.0) !popped;
          if Prng.float prng 1.0 < 0.3 then
            Calendar_queue.push q (t +. Prng.float prng 10.0) (- !popped);
          step ()
        end
  in
  step ()

(* --- qcheck equivalence against the Heap reference ---------------- *)

(* A schedule is a list of operations: [Push t] or [Pop].  Both
   structures execute it; the observed (time, code) pop streams must be
   identical.  Times are drawn from a small set so ties are common. *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun t -> `Push t) (oneofl [ 0.0; 1.0; 1.5; 2.0; 2.0; 3.0; 10.0; 100.0 ]));
        (2, map (fun t -> `Push t) (float_bound_inclusive 50.0));
        (2, return `Pop);
      ])

let schedule_gen = QCheck.Gen.(list_size (int_range 0 400) op_gen)

let print_schedule ops =
  String.concat ";"
    (List.map (function `Push t -> Printf.sprintf "push %g" t | `Pop -> "pop") ops)

let run_schedule ops =
  let h = Heap.create () in
  let q = Calendar_queue.create () in
  let code = ref 0 in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | `Push t ->
          Heap.push h t !code;
          Calendar_queue.push q t !code;
          incr code
      | `Pop ->
          let a = Heap.pop h in
          let b = Calendar_queue.pop q in
          if a <> b then ok := false)
    ops;
  (* drain both: the survivors must agree too *)
  let rec drain () =
    let a = Heap.pop h in
    let b = Calendar_queue.pop q in
    if a <> b then ok := false;
    if a <> None || b <> None then drain ()
  in
  drain ();
  !ok

let prop_matches_heap =
  QCheck.Test.make ~name:"calendar queue pops exactly like the heap" ~count:500
    (QCheck.make ~print:print_schedule schedule_gen)
    run_schedule

let prop_matches_heap_monotone =
  (* discrete-event shape: pushes never go behind the last pop *)
  QCheck.Test.make ~name:"calendar queue matches heap on advancing frontiers" ~count:200
    QCheck.(pair small_int (small_list (pair (float_bound_inclusive 20.0) bool)))
    (fun (seed, deltas) ->
      let h = Heap.create () in
      let q = Calendar_queue.create () in
      let prng = Prng.create seed in
      let clock = ref 0.0 in
      let code = ref 0 in
      let ok = ref true in
      List.iter
        (fun (dt, tie) ->
          let t = if tie then !clock else !clock +. dt in
          Heap.push h t !code;
          Calendar_queue.push q t !code;
          incr code;
          if Prng.float prng 1.0 < 0.5 then begin
            let a = Heap.pop h in
            let b = Calendar_queue.pop q in
            if a <> b then ok := false;
            match a with Some (t, _) -> clock := t | None -> ()
          end)
        deltas;
      let rec drain () =
        let a = Heap.pop h in
        let b = Calendar_queue.pop q in
        if a <> b then ok := false;
        if a <> None || b <> None then drain ()
      in
      drain ();
      !ok)

let tests =
  ( "calendar-queue",
    [
      Alcotest.test_case "empty queue" `Quick test_empty;
      Alcotest.test_case "orders by time" `Quick test_ordering;
      Alcotest.test_case "fifo on ties" `Quick test_fifo_ties;
      Alcotest.test_case "allocation-free buffer API" `Quick test_buffer_api;
      Alcotest.test_case "clear resets sequence" `Quick test_clear;
      Alcotest.test_case "rejects non-finite times" `Quick test_rejects_non_finite;
      Alcotest.test_case "order survives rebuilds" `Quick test_rebuild_growth;
      Alcotest.test_case "simulation-shaped stream" `Quick test_simulation_shape;
      QCheck_alcotest.to_alcotest prop_matches_heap;
      QCheck_alcotest.to_alcotest prop_matches_heap_monotone;
    ] )
