(* The observability layer: sink semantics and thread safety, the JSON
   validator, Chrome export well-formedness, probe/metrics
   reconciliation, instrumented backends, memoizer counters, and the
   telemetered tuner's bit-identical results. *)

open Sw_obs
module Backend = Sw_backend.Backend

let p = Sw_arch.Params.default

let config = Sw_sim.Config.default p

let pool n = Sw_util.Pool.create ~size:n ()

let entry name = Sw_workloads.Registry.find_exn name

let kernel_of name scale = (entry name).Sw_workloads.Registry.build ~scale

let span ?(cat = "test") ?(name = "s") ?(pid = Sink.host_pid) ?(track = 0) ?(t = 0.0)
    ?(dur = 1.0) ?(args = []) () =
  { Sink.cat; name; pid; track; t_us = t; dur_us = dur; args }

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Sink *)

let test_sink_spans_in_order () =
  let s = Sink.create () in
  Alcotest.(check int) "empty" 0 (Sink.span_count s);
  Sink.record s (span ~name:"a" ());
  Sink.record s (span ~name:"b" ());
  Sink.record s (span ~name:"c" ());
  Alcotest.(check int) "three spans" 3 (Sink.span_count s);
  Alcotest.(check (list string)) "record order" [ "a"; "b"; "c" ]
    (List.map (fun sp -> sp.Sink.name) (Sink.spans s))

let test_sink_counters () =
  let s = Sink.create () in
  Alcotest.(check (float 0.0)) "untouched counter reads 0" 0.0 (Sink.counter s "nope");
  Sink.incr s "b.count";
  Sink.incr s ~by:4 "b.count";
  Sink.add s "a.total" 2.5;
  Alcotest.(check (float 0.0)) "incr accumulates" 5.0 (Sink.counter s "b.count");
  Alcotest.(check (float 0.0)) "add accumulates" 2.5 (Sink.counter s "a.total");
  (match Sink.counters s with
  | [ ("a.total", _); ("b.count", _) ] -> ()
  | other -> Alcotest.failf "expected sorted counters, got %d" (List.length other));
  Sink.clear s;
  Alcotest.(check int) "clear drops spans" 0 (Sink.span_count s);
  Alcotest.(check (list (pair string (float 0.0)))) "clear drops counters" [] (Sink.counters s)

let test_with_span () =
  let s = Sink.create () in
  let v = Sink.with_span s ~cat:"work" "job" (fun () -> 42) in
  Alcotest.(check int) "returns the body's value" 42 v;
  match Sink.spans s with
  | [ sp ] ->
      Alcotest.(check string) "cat" "work" sp.Sink.cat;
      Alcotest.(check string) "name" "job" sp.Sink.name;
      Alcotest.(check int) "host pid" Sink.host_pid sp.Sink.pid;
      Alcotest.(check bool) "non-negative duration" true (sp.Sink.dur_us >= 0.0)
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

let test_with_span_records_on_raise () =
  let s = Sink.create () in
  (match Sink.with_span s ~cat:"work" "boom" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected the exception to propagate");
  Alcotest.(check int) "span recorded despite the raise" 1 (Sink.span_count s)

let test_sink_thread_safety () =
  let s = Sink.create () in
  let items = List.init 64 Fun.id in
  let _ =
    Sw_util.Pool.map (pool 4)
      (fun i ->
        for _ = 1 to 100 do
          Sink.incr s "hits"
        done;
        Sink.record s (span ~name:(string_of_int i) ());
        i)
      items
  in
  Alcotest.(check (float 0.0)) "no lost counter updates" 6400.0 (Sink.counter s "hits");
  Alcotest.(check int) "no lost spans" 64 (Sink.span_count s)

(* ------------------------------------------------------------------ *)
(* JSON validator *)

let test_json_validator_accepts () =
  List.iter
    (fun doc ->
      match Json.validate doc with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "rejected %s: %s" doc msg)
    [
      "{}";
      "[]";
      "null";
      "-12.5e-3";
      "\"a \\\"quoted\\\" string with \\u00e9\"";
      "{\"a\": [1, 2.5, true, false, null], \"b\": {\"c\": \"d\"}}";
      "  [ {\"x\": 1e9} , [] ]  ";
    ]

let test_json_validator_rejects () =
  List.iter
    (fun doc ->
      match Json.validate doc with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "accepted invalid JSON: %s" doc)
    [
      "";
      "{";
      "{\"a\": }";
      "[1, 2,]";
      "{\"a\" 1}";
      "nul";
      "0x10";
      "\"unterminated";
      "{} trailing";
      "{\"a\": NaN}";
      "'single'";
    ]

(* ------------------------------------------------------------------ *)
(* Chrome export *)

let check_valid label s =
  match Json.validate s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invalid JSON (%s)" label msg

let test_chrome_empty_sink_valid () =
  let s = Sink.create () in
  let out = Chrome.to_string s in
  check_valid "empty sink" out;
  Alcotest.(check bool) "has a traceEvents array" true (contains out "\"traceEvents\"")

let test_chrome_escapes_hostile_strings () =
  let s = Sink.create () in
  Sink.record s
    (span ~cat:"we\"ird" ~name:"new\nline\ttab\\slash \x01ctl"
       ~args:[ ("msg", Sink.String "a\"b\\c\nd") ]
       ());
  Sink.add s "strange\"counter" 1.0;
  check_valid "hostile strings" (Chrome.to_string s)

let test_chrome_clamps_non_finite () =
  let s = Sink.create () in
  Sink.record s (span ~t:Float.nan ~dur:Float.infinity ~args:[ ("x", Sink.Float Float.nan) ] ());
  Sink.add s "bad" Float.neg_infinity;
  check_valid "non-finite numbers" (Chrome.to_string s)

let test_chrome_counters_and_args_present () =
  let s = Sink.create () in
  Sink.incr s ~by:7 "tuner.evaluated";
  Sink.record s
    (span ~args:[ ("grain", Sink.Int 32); ("db", Sink.Bool false); ("c", Sink.Float 1.5) ] ());
  let out = Chrome.to_string s in
  check_valid "counters + args" out;
  let has affix = contains out affix in
  Alcotest.(check bool) "counter event emitted" true (has "\"ph\": \"C\"");
  Alcotest.(check bool) "counter name present" true (has "tuner.evaluated");
  Alcotest.(check bool) "int arg" true (has "\"grain\": 32");
  Alcotest.(check bool) "bool arg" true (has "\"db\": false")

let test_chrome_write_and_validate_file () =
  let s = Sink.create () in
  Sink.record s (span ());
  let path = Filename.temp_file "sw_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Chrome.write path s;
      match Json.validate_file path with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "written file invalid: %s" msg)

let test_events_of_trace_degenerate () =
  Alcotest.(check int) "empty trace converts to no events" 0
    (List.length (Chrome.events_of_trace []));
  let zero_len =
    [ { Sw_sim.Trace.cpe = 0; kind = Sw_sim.Trace.Compute; t0 = 5.0; t1 = 5.0 } ]
  in
  (match Chrome.events_of_trace zero_len with
  | [ e ] -> Alcotest.(check (float 0.0)) "zero-length span kept, dur 0" 0.0 e.Sink.dur_us
  | l -> Alcotest.failf "expected one event, got %d" (List.length l));
  let s = Sink.create () in
  List.iter (Sink.record s) (Chrome.events_of_trace zero_len);
  check_valid "zero-makespan trace exports" (Chrome.to_string s)

(* ------------------------------------------------------------------ *)
(* Probe: counters restate Metrics.t, reconciliation holds *)

let observed_kmeans () =
  let kernel = kernel_of "kmeans" 0.25 in
  let v = (entry "kmeans").Sw_workloads.Registry.variant in
  let lowered = Sw_swacc.Lower.lower_exn p kernel v in
  let sink = Sink.create () in
  let metrics, trace =
    Probe.run_traced sink ~name:"kmeans" config lowered.Sw_swacc.Lowered.programs
  in
  (sink, metrics, trace)

let test_probe_counters_match_metrics () =
  let sink, m, trace = observed_kmeans () in
  let c = Sink.counter sink in
  Alcotest.(check (float 0.0)) "one run" 1.0 (c "sim.runs");
  Alcotest.(check (float 0.0)) "cycles" m.Sw_sim.Metrics.cycles (c "sim.cycles");
  Alcotest.(check (float 0.0)) "transactions"
    (float_of_int m.Sw_sim.Metrics.transactions)
    (c "sim.transactions");
  Alcotest.(check (float 0.0)) "payload bytes"
    (float_of_int m.Sw_sim.Metrics.payload_bytes)
    (c "sim.payload_bytes");
  Alcotest.(check (float 0.0)) "dma requests"
    (float_of_int m.Sw_sim.Metrics.dma_requests)
    (c "sim.dma_requests");
  Alcotest.(check (float 0.0)) "comp_cycles_sum" m.Sw_sim.Metrics.comp_cycles_sum
    (c "sim.comp_cycles_sum");
  (* machine spans = per-CPE activity + one mc_busy totals bar per
     controller that served traffic; DMA lifetimes land in the separate
     async stream, one per request *)
  let mc_bars =
    Array.fold_left
      (fun acc b -> if b > 0.0 then acc + 1 else acc)
      0 m.Sw_sim.Metrics.mc_busy_cycles
  in
  Alcotest.(check int) "machine spans = trace spans + mc busy bars"
    (List.length trace + mc_bars) (Sink.span_count sink);
  Alcotest.(check int) "one async span per dma request" m.Sw_sim.Metrics.dma_requests
    (Sink.async_count sink)

let test_probe_reconcile_ok () =
  let _, m, trace = observed_kmeans () in
  match Probe.reconcile m trace with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "reconciliation failed: %s" msg

let test_probe_reconcile_catches_drift () =
  let _, m, trace = observed_kmeans () in
  let drifted = { m with Sw_sim.Metrics.comp_cycles = m.Sw_sim.Metrics.comp_cycles +. 10.0 } in
  (match Probe.reconcile drifted trace with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected a comp_cycles discrepancy");
  let truncated = { m with Sw_sim.Metrics.cycles = m.Sw_sim.Metrics.cycles /. 2.0 } in
  match Probe.reconcile truncated trace with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected an out-of-makespan span"

(* ------------------------------------------------------------------ *)
(* Instrumented backends *)

let test_instrument_transparent_and_counted () =
  let sink = Sink.create () in
  let b = Backend.instrument sink Backend.simulator in
  let kernel = kernel_of "kmeans" 0.25 in
  let v = (entry "kmeans").Sw_workloads.Registry.variant in
  let plain = Result.get_ok (Backend.assess Backend.simulator config kernel v) in
  let wrapped = Result.get_ok (Backend.assess b config kernel v) in
  Alcotest.(check (float 0.0)) "verdict unchanged by instrumentation" plain.Backend.cycles
    wrapped.Backend.cycles;
  let infeasible =
    { Sw_swacc.Kernel.grain = 4096; unroll = 1; active_cpes = 64; double_buffer = false }
  in
  (match Backend.assess b config (kernel_of "lud" 1.0) infeasible with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection");
  Alcotest.(check (float 0.0)) "ok counted" 1.0 (Sink.counter sink "backend.sim.ok");
  Alcotest.(check (float 0.0)) "infeasible counted" 1.0
    (Sink.counter sink "backend.sim.infeasible");
  Alcotest.(check (float 1e-6)) "machine time billed to the counter"
    wrapped.Backend.cost.Backend.machine_us
    (Sink.counter sink "backend.sim.machine_us");
  Alcotest.(check int) "one span per assessment" 2 (Sink.span_count sink)

(* Satellite: obs counters must exactly match the memoizer's own
   accounting, sequentially and under a 4-domain pool. *)
let memo_counter_check ~pool_size =
  let sink = Sink.create () in
  let memo = Backend.memoize ~sink Backend.static_model in
  let b = Backend.memoized memo in
  let e = entry "kmeans" in
  let kernel = kernel_of "kmeans" 0.25 in
  let points =
    Sw_tuning.Space.enumerate ~grains:e.Sw_workloads.Registry.grains
      ~unrolls:e.Sw_workloads.Registry.unrolls ()
  in
  let tune () =
    Sw_tuning.Tuner.tune_exn ~backend:b ~pool:(pool pool_size) config kernel ~points
  in
  let o1 = tune () in
  let o2 = tune () in
  Alcotest.(check bool) "same pick through the memo" true
    (o1.Sw_tuning.Tuner.best = o2.Sw_tuning.Tuner.best);
  Alcotest.(check (float 0.0))
    (Printf.sprintf "hits counter = memo_hits (pool %d)" pool_size)
    (float_of_int (Backend.memo_hits memo))
    (Sink.counter sink "memo.hits");
  Alcotest.(check (float 0.0))
    (Printf.sprintf "misses counter = memo_misses (pool %d)" pool_size)
    (float_of_int (Backend.memo_misses memo))
    (Sink.counter sink "memo.misses");
  (* the second identical search is all hits: billing stays truthful *)
  Alcotest.(check bool) "second search served from cache" true
    (Backend.memo_hits memo >= List.length points)

let test_memo_counters_sequential () = memo_counter_check ~pool_size:1

let test_memo_counters_pooled () = memo_counter_check ~pool_size:4

(* ------------------------------------------------------------------ *)
(* Telemetered tuner *)

let test_tuner_obs_bit_identical () =
  let e = entry "hotspot" in
  let kernel = kernel_of "hotspot" 0.5 in
  let points =
    Sw_tuning.Space.enumerate ~grains:e.Sw_workloads.Registry.grains
      ~unrolls:e.Sw_workloads.Registry.unrolls ()
  in
  let baseline =
    Sw_tuning.Tuner.tune_exn ~backend:Backend.simulator config kernel ~points
  in
  List.iter
    (fun pool_size ->
      let sink = Sink.create () in
      let o =
        Sw_tuning.Tuner.tune_exn ~backend:Backend.simulator
          ?pool:(Option.map (fun n -> pool n) pool_size)
          ~obs:sink config kernel ~points
      in
      let label what =
        Printf.sprintf "%s (pool %s)" what
          (match pool_size with None -> "none" | Some n -> string_of_int n)
      in
      Alcotest.(check bool) (label "same pick") true
        (o.Sw_tuning.Tuner.best = baseline.Sw_tuning.Tuner.best);
      Alcotest.(check (float 0.0)) (label "same best cycles")
        baseline.Sw_tuning.Tuner.best_cycles o.Sw_tuning.Tuner.best_cycles;
      Alcotest.(check int) (label "same evaluated") baseline.Sw_tuning.Tuner.evaluated
        o.Sw_tuning.Tuner.evaluated;
      Alcotest.(check int) (label "same infeasible") baseline.Sw_tuning.Tuner.infeasible
        o.Sw_tuning.Tuner.infeasible;
      Alcotest.(check (float 0.0)) (label "same machine time")
        baseline.Sw_tuning.Tuner.machine_time_us o.Sw_tuning.Tuner.machine_time_us)
    [ None; Some 1; Some 4 ]

let test_tuner_obs_counters_match_outcome () =
  let e = entry "kmeans" in
  let kernel = kernel_of "kmeans" 0.25 in
  let points =
    Sw_tuning.Space.enumerate ~grains:e.Sw_workloads.Registry.grains
      ~unrolls:e.Sw_workloads.Registry.unrolls ()
  in
  let sink = Sink.create () in
  let o =
    Sw_tuning.Tuner.tune_exn ~backend:Backend.simulator ~pool:(pool 4) ~obs:sink config kernel
      ~points
  in
  let c = Sink.counter sink in
  Alcotest.(check (float 0.0)) "searches" 1.0 (c "tuner.searches");
  Alcotest.(check (float 0.0)) "points" (float_of_int (List.length points)) (c "tuner.points");
  Alcotest.(check (float 0.0)) "evaluated"
    (float_of_int o.Sw_tuning.Tuner.evaluated)
    (c "tuner.evaluated");
  Alcotest.(check (float 0.0)) "infeasible"
    (float_of_int o.Sw_tuning.Tuner.infeasible)
    (c "tuner.infeasible");
  Alcotest.(check (float 1e-6)) "machine time" o.Sw_tuning.Tuner.machine_time_us
    (c "tuner.machine_us");
  Alcotest.(check (float 0.0)) "backend ok counter = evaluated"
    (float_of_int o.Sw_tuning.Tuner.evaluated)
    (c "backend.sim.ok");
  Alcotest.(check (float 1e-6)) "backend machine counter = outcome billing"
    o.Sw_tuning.Tuner.machine_time_us
    (c "backend.sim.machine_us");
  (* one span per assessment plus the search-level tuner span *)
  Alcotest.(check int) "span accounting" (List.length points + 1) (Sink.span_count sink);
  check_valid "tuner trace exports" (Chrome.to_string sink)

let tests =
  ( "obs",
    [
      Alcotest.test_case "sink keeps spans in order" `Quick test_sink_spans_in_order;
      Alcotest.test_case "sink counters" `Quick test_sink_counters;
      Alcotest.test_case "with_span" `Quick test_with_span;
      Alcotest.test_case "with_span records on raise" `Quick test_with_span_records_on_raise;
      Alcotest.test_case "sink is thread-safe" `Quick test_sink_thread_safety;
      Alcotest.test_case "json validator accepts valid docs" `Quick test_json_validator_accepts;
      Alcotest.test_case "json validator rejects invalid docs" `Quick test_json_validator_rejects;
      Alcotest.test_case "chrome: empty sink is valid" `Quick test_chrome_empty_sink_valid;
      Alcotest.test_case "chrome: hostile strings escaped" `Quick
        test_chrome_escapes_hostile_strings;
      Alcotest.test_case "chrome: non-finite clamped" `Quick test_chrome_clamps_non_finite;
      Alcotest.test_case "chrome: counters and args emitted" `Quick
        test_chrome_counters_and_args_present;
      Alcotest.test_case "chrome: written file parses" `Quick test_chrome_write_and_validate_file;
      Alcotest.test_case "chrome: degenerate traces" `Quick test_events_of_trace_degenerate;
      Alcotest.test_case "probe counters restate metrics" `Quick test_probe_counters_match_metrics;
      Alcotest.test_case "probe reconciles run_traced" `Quick test_probe_reconcile_ok;
      Alcotest.test_case "probe reconcile catches drift" `Quick test_probe_reconcile_catches_drift;
      Alcotest.test_case "instrument is transparent and counted" `Quick
        test_instrument_transparent_and_counted;
      Alcotest.test_case "memo counters match accounting (seq)" `Quick
        test_memo_counters_sequential;
      Alcotest.test_case "memo counters match accounting (pool 4)" `Quick
        test_memo_counters_pooled;
      Alcotest.test_case "tuner results bit-identical under obs" `Slow
        test_tuner_obs_bit_identical;
      Alcotest.test_case "tuner obs counters match outcome" `Quick
        test_tuner_obs_counters_match_outcome;
    ] )
