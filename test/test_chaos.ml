(* The self-healing layer: chaos plans must round-trip their spec
   grammar and derive deterministically from a seed, typed journal
   issues must classify unreadable vs mismatched files, journal_merge
   must stay idempotent and first-written-wins under arbitrary
   interleavings (torn tails included — qcheck), and the supervisor
   must relaunch crashed/hung workers, count dropped protocol lines,
   and quarantine a shard that exhausts its restart budget. *)

open Sw_tuning
module Backend = Sw_backend.Backend
module Chaos = Sw_fault.Fault.Chaos
module Json = Sw_obs.Json

let p = Sw_arch.Params.default
let config = Sw_sim.Config.default p
let pt grain unroll double_buffer = { Space.grain; unroll; double_buffer }
let entry = Sw_workloads.Registry.find_exn "vector-add"
let kernel = entry.Sw_workloads.Registry.build ~scale:0.1
let key point = Backend.journal_key_of kernel (Space.to_variant point ~active_cpes:64)
let ok cycles = Backend.Journal_ok { cycles; machine_us = 1.5; machine_events = 42 }

let write_file path lines =
  let oc = open_out_bin path in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    lines;
  close_out oc

let write_raw path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Chaos plans: grammar, env transport, arming rules, generation *)

let test_spec_roundtrip () =
  let plans =
    [
      { Chaos.shard = 0; sticky = false; action = Chaos.Kill_after 6 };
      { Chaos.shard = 1; sticky = true; action = Chaos.Stall_after { lines = 3; secs = 2.5 } };
      { Chaos.shard = 2; sticky = false; action = Chaos.Corrupt_journal { mode = "tail" } };
      { Chaos.shard = 0; sticky = false; action = Chaos.Drop_incumbents 2 };
      { Chaos.shard = 3; sticky = false; action = Chaos.Dup_incumbents 5 };
    ]
  in
  (match Chaos.parse (Chaos.to_spec plans) with
  | Ok plans' -> Alcotest.(check bool) "spec round-trips" true (plans = plans')
  | Error msg -> Alcotest.failf "round-trip rejected: %s" msg);
  (* the empty plan is the empty spec *)
  Alcotest.(check string) "empty spec" "" (Chaos.to_spec []);
  Alcotest.(check bool) "empty parses" true (Chaos.parse "" = Ok []);
  (* malformed specs are typed errors, not crashes *)
  List.iter
    (fun spec ->
      match Chaos.parse spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed spec %S" spec)
    [
      "frobnicate:shard=0";
      "kill:shard=0";  (* missing after *)
      "kill:after=3";  (* missing shard *)
      "corrupt:shard=0,mode=nonsense";
      "stall:shard=0,after=2";  (* missing secs *)
      "drop:shard=0,every=0";  (* every must be >= 1 *)
      "kill:shard=-1,after=3";
    ]

let test_env_transport () =
  Unix.putenv Chaos.env_var "kill:shard=1,after=4,sticky=1";
  let plans = Chaos.of_env () in
  Alcotest.(check bool) "of_env parses the planted spec" true
    (plans = [ { Chaos.shard = 1; sticky = true; action = Chaos.Kill_after 4 } ]);
  Unix.putenv Chaos.env_var "";
  Alcotest.(check bool) "empty env is no chaos" true (Chaos.of_env () = []);
  Unix.putenv Chaos.env_var "garbage::";
  Alcotest.(check bool) "malformed env degrades to no chaos" true (Chaos.of_env () = []);
  Unix.putenv Chaos.env_var "";
  Unix.putenv Chaos.incarnation_var "3";
  Alcotest.(check int) "incarnation from env" 3 (Chaos.incarnation ());
  Unix.putenv Chaos.incarnation_var "";
  Alcotest.(check int) "incarnation defaults to 0" 0 (Chaos.incarnation ())

let test_arming_rules () =
  let plans =
    [
      { Chaos.shard = 0; sticky = false; action = Chaos.Kill_after 2 };
      { Chaos.shard = 0; sticky = true; action = Chaos.Stall_after { lines = 1; secs = 9. } };
      { Chaos.shard = 0; sticky = false; action = Chaos.Corrupt_journal { mode = "zero" } };
      { Chaos.shard = 1; sticky = false; action = Chaos.Drop_incumbents 3 };
    ]
  in
  (* incarnation 0: everything targeting shard 0 fires *)
  Alcotest.(check int) "shard 0, incarnation 0" 3
    (List.length (Chaos.armed ~shard:0 ~incarnation:0 plans));
  (* incarnation 1: the one-shot kill disarms, the sticky stall and the
     corruption stay armed *)
  let rearmed = Chaos.armed ~shard:0 ~incarnation:1 plans in
  Alcotest.(check int) "shard 0, incarnation 1" 2 (List.length rearmed);
  Alcotest.(check bool) "one-shot kill disarmed" false
    (List.exists (function Chaos.Kill_after _ -> true | _ -> false) rearmed);
  (* other shards see only their own plans *)
  Alcotest.(check bool) "shard 1 sees its drop" true
    (Chaos.armed ~shard:1 ~incarnation:5 plans = [ Chaos.Drop_incumbents 3 ]);
  Alcotest.(check bool) "shard 2 sees nothing" true
    (Chaos.armed ~shard:2 ~incarnation:0 plans = [])

let test_generate_deterministic () =
  for seed = 0 to 24 do
    let a = Chaos.generate ~seed ~shards:4 in
    let b = Chaos.generate ~seed ~shards:4 in
    if a <> b then Alcotest.failf "seed %d not deterministic" seed;
    if a = [] then Alcotest.failf "seed %d generated no plan" seed;
    List.iter
      (fun { Chaos.shard; _ } ->
        if shard < 0 || shard >= 4 then Alcotest.failf "seed %d targets shard %d" seed shard)
      a;
    (* every generated plan survives its own spec grammar *)
    match Chaos.parse (Chaos.to_spec a) with
    | Ok a' when a' = a -> ()
    | Ok _ -> Alcotest.failf "seed %d spec not faithful" seed
    | Error msg -> Alcotest.failf "seed %d spec rejected: %s" seed msg
  done

(* ------------------------------------------------------------------ *)
(* Typed journal issues *)

let test_unreadable_journals () =
  let path = Filename.temp_file "swpm_chaos_unreadable" ".jsonl" in
  (* an empty file: openable, useless — must be typed, not raised *)
  write_raw path "";
  (match Backend.journal_read ~config path with
  | Error (Backend.Journal_unreadable { path = p'; _ }) ->
      Alcotest.(check string) "empty file path" path p'
  | Error (Backend.Journal_mismatched _) -> Alcotest.fail "empty file typed as mismatch"
  | Ok _ -> Alcotest.fail "empty file read as Ok");
  (* garbage bytes where the header should be *)
  write_raw path "\x00\xffnot json at all\n{]";
  (match Backend.journal_read ~config path with
  | Error (Backend.Journal_unreadable _) -> ()
  | _ -> Alcotest.fail "garbage header not typed unreadable");
  (* a missing file is an empty journal, not an issue *)
  Sys.remove path;
  (match Backend.journal_read ~config path with
  | Ok [] -> ()
  | _ -> Alcotest.fail "missing file should read as empty");
  (* merge with an on_issue callback skips the unreadable shard *)
  let good = Filename.temp_file "swpm_chaos_good" ".jsonl" in
  let bad = Filename.temp_file "swpm_chaos_bad" ".jsonl" in
  let k = key (pt 32 1 false) in
  write_file good [ Backend.journal_header_line config; Backend.journal_entry_line k (ok 100.) ];
  write_raw bad "garbage";
  let issues = ref [] in
  let merged =
    Backend.journal_merge ~on_issue:(fun i -> issues := i :: !issues) ~config [ bad; good ]
  in
  Alcotest.(check int) "good shard merged" 1 (Hashtbl.length merged);
  (match !issues with
  | [ Backend.Journal_unreadable { path = p'; _ } ] -> Alcotest.(check string) "issue path" bad p'
  | _ -> Alcotest.fail "expected exactly one unreadable issue");
  (* without a callback, unreadable shards are skipped silently (the
     legacy raise is reserved for digest mismatches) *)
  Alcotest.(check int) "callback-free merge skips unreadable" 1
    (Hashtbl.length (Backend.journal_merge ~config [ bad; good ]));
  Sys.remove good;
  Sys.remove bad

let test_corrupt_file_modes () =
  let k1 = key (pt 32 1 false) and k2 = key (pt 32 2 false) in
  let fresh () =
    let path = Filename.temp_file "swpm_chaos_corrupt" ".jsonl" in
    write_file path
      [
        Backend.journal_header_line config;
        Backend.journal_entry_line k1 (ok 100.);
        Backend.journal_entry_line k2 (ok 200.);
      ];
    path
  in
  (* zero: truncated to nothing -> typed unreadable *)
  let z = fresh () in
  Alcotest.(check bool) "zero applies" true (Chaos.corrupt_file ~mode:"zero" z);
  Alcotest.(check int) "zeroed file is empty" 0 (String.length (In_channel.with_open_bin z In_channel.input_all));
  (* garbage: unparseable -> typed unreadable *)
  let g = fresh () in
  Alcotest.(check bool) "garbage applies" true (Chaos.corrupt_file ~mode:"garbage" g);
  (match Backend.journal_read ~config g with
  | Error (Backend.Journal_unreadable _) -> ()
  | _ -> Alcotest.fail "garbage journal not typed unreadable");
  (* tail: the mid-write SIGKILL shape — header survives, last entry is
     torn, the reader silently drops exactly the torn line *)
  let t = fresh () in
  Alcotest.(check bool) "tail applies" true (Chaos.corrupt_file ~mode:"tail" t);
  (match Backend.journal_read ~config t with
  | Ok entries -> Alcotest.(check int) "torn tail drops one entry" 1 (List.length entries)
  | Error issue -> Alcotest.failf "torn tail unreadable: %s" (Backend.journal_issue_string issue));
  (* a missing file is reported, not created *)
  Alcotest.(check bool) "missing file is false" false
    (Chaos.corrupt_file ~mode:"zero" (Filename.get_temp_dir_name () ^ "/swpm-no-such-journal"));
  List.iter Sys.remove [ z; g; t ]

(* ------------------------------------------------------------------ *)
(* Property: journal_merge is idempotent and first-written-wins under
   arbitrary interleavings, torn tails included *)

let keys =
  Array.of_list
    (List.map key
       [ pt 32 1 false; pt 32 2 false; pt 64 1 false; pt 64 2 true; pt 100 4 false ])

(* A journal description: entries as (key index, cycles), plus whether
   to tear the final entry mid-line. *)
let journal_gen =
  QCheck.Gen.(
    pair
      (list_size (int_bound 8)
         (pair (int_bound (Array.length keys - 1)) (map float_of_int (int_bound 1_000_000))))
      bool)

let materialize (entries, torn) =
  let path = Filename.temp_file "swpm_chaos_prop" ".jsonl" in
  let lines =
    Backend.journal_header_line config
    :: List.map (fun (ki, c) -> Backend.journal_entry_line keys.(ki) (ok c)) entries
  in
  (match (torn, List.rev lines) with
  | true, last :: rev_rest when entries <> [] ->
      write_file path (List.rev rev_rest);
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc (String.sub last 0 (String.length last / 2));
      close_out oc
  | _ -> write_file path lines);
  path

(* the oracle: fold the entries in file order, first write wins; a torn
   journal loses exactly its last entry *)
let expected journals =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (entries, torn) ->
      let survived =
        if torn && entries <> [] then List.filteri (fun i _ -> i < List.length entries - 1) entries
        else entries
      in
      List.iter
        (fun (ki, c) -> if not (Hashtbl.mem tbl ki) then Hashtbl.add tbl ki c)
        survived)
    journals;
  tbl

let same_content merged oracle =
  Hashtbl.length merged = Hashtbl.length oracle
  && Hashtbl.fold
       (fun ki c acc ->
         acc
         &&
         match Hashtbl.find_opt merged keys.(ki) with
         | Some (Backend.Journal_ok { cycles; _ }) -> cycles = c
         | _ -> false)
       oracle true

let prop_merge_first_written_wins =
  QCheck.Test.make ~count:100 ~name:"journal_merge: first-written-wins, torn tails dropped"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 4) journal_gen))
    (fun journals ->
      let paths = List.map materialize journals in
      Fun.protect
        ~finally:(fun () -> List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths)
        (fun () ->
          let merged = Backend.journal_merge ~config paths in
          let oracle = expected journals in
          (* idempotent: merging the same shards again changes nothing *)
          let twice = Backend.journal_merge ~config (paths @ paths) in
          same_content merged oracle && same_content twice oracle))

(* ------------------------------------------------------------------ *)
(* Supervision: scripted sh workers speaking the pipe protocol *)

let sh_proc ~shard script = Shard.launch ~shard ~argv:[| "/bin/sh"; "-c"; script |] ()

(* Crash on the first incarnation, succeed on the relaunch: the restart
   policy must deliver a Completed report with one restart. *)
let test_supervise_restart () =
  let script =
    {|if [ "${SWPM_CHAOS_INCARNATION:-0}" = "0" ]; then
        echo '{"ev": "incumbent", "cycles": 100.5, "seq": 0}'
        exit 3
      else
        echo '{"ev": "incumbent", "cycles": 50.5, "seq": 0}'
        echo '{"ev": "done", "stats": {"shard": 0, "cpu_s": 0.0}}'
        exit 0
      fi|}
  in
  let report = Shard.supervise ~max_restarts:2 [ sh_proc ~shard:0 script ] in
  Alcotest.(check bool) "completed" true (report.Shard.health = Shard.Completed);
  Alcotest.(check int) "one restart" 1 report.Shard.restarts;
  (match report.Shard.stats with
  | [ Json.Obj _ ] -> ()
  | _ -> Alcotest.fail "expected one stats object");
  Alcotest.(check int) "no dropped lines" 0 report.Shard.lines_dropped

(* A worker that always dies exhausts its budget and is quarantined:
   the run completes Degraded instead of failing, and a healthy sibling
   still reports. *)
let test_supervise_quarantine () =
  let crash = {|exit 2|} in
  let healthy = {|echo '{"ev": "done", "stats": {"shard": 1, "cpu_s": 0.0}}'|} in
  let report =
    Shard.supervise ~max_restarts:1 [ sh_proc ~shard:0 crash; sh_proc ~shard:1 healthy ]
  in
  Alcotest.(check bool) "degraded names shard 0" true
    (report.Shard.health = Shard.Degraded [ 0 ]);
  Alcotest.(check int) "budget exhausted" 1 report.Shard.restarts;
  (match report.Shard.stats with
  | [ Json.Null; Json.Obj _ ] -> ()
  | _ -> Alcotest.fail "quarantined slot must report Null, healthy slot its stats")

(* A silent worker trips the progress deadline, is killed, and the
   relaunch (which exits promptly) completes the run. *)
let test_supervise_hang () =
  let script =
    {|if [ "${SWPM_CHAOS_INCARNATION:-0}" = "0" ]; then
        sleep 30
      else
        echo '{"ev": "done", "stats": {"shard": 0, "cpu_s": 0.0}}'
      fi|}
  in
  let t0 = Unix.gettimeofday () in
  let report = Shard.supervise ~max_restarts:1 ~hang_timeout_s:0.4 [ sh_proc ~shard:0 script ] in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "completed after hang-kill" true
    (report.Shard.health = Shard.Completed);
  Alcotest.(check int) "hang cost one restart" 1 report.Shard.restarts;
  Alcotest.(check bool) "did not wait out the sleep" true (elapsed < 10.0)

(* Sequence gaps on the incumbent stream are counted as dropped lines;
   duplicated sequence numbers are not double-counted. *)
let test_supervise_lines_dropped () =
  let script =
    {|echo '{"ev": "incumbent", "cycles": 100.5, "seq": 0}'
      echo '{"ev": "incumbent", "cycles": 90.5, "seq": 3}'
      echo '{"ev": "incumbent", "cycles": 90.5, "seq": 3}'
      echo '{"ev": "hb", "seq": 4}'
      echo '{"ev": "done", "stats": {"shard": 0, "cpu_s": 0.0}}'|}
  in
  let report = Shard.supervise ~max_restarts:0 [ sh_proc ~shard:0 script ] in
  Alcotest.(check bool) "completed" true (report.Shard.health = Shard.Completed);
  Alcotest.(check int) "two lines lost in the gap" 2 report.Shard.lines_dropped

(* The legacy fail-fast contract is a wrapper over the same engine. *)
let test_coordinate_fail_fast () =
  match Shard.coordinate [ sh_proc ~shard:0 {|exit 7|} ] with
  | Ok _ -> Alcotest.fail "coordinate must fail fast on a dead worker"
  | Error msg -> Alcotest.(check bool) "names the shard" true (String.length msg > 0)

let tests =
  ( "chaos",
    [
      Alcotest.test_case "chaos spec grammar round-trips" `Quick test_spec_roundtrip;
      Alcotest.test_case "chaos env transport" `Quick test_env_transport;
      Alcotest.test_case "arming rules: one-shot vs sticky" `Quick test_arming_rules;
      Alcotest.test_case "generate is seed-deterministic" `Quick test_generate_deterministic;
      Alcotest.test_case "unreadable journals are typed" `Quick test_unreadable_journals;
      Alcotest.test_case "corrupt_file modes" `Quick test_corrupt_file_modes;
      QCheck_alcotest.to_alcotest prop_merge_first_written_wins;
      Alcotest.test_case "supervisor relaunches a crashed worker" `Quick test_supervise_restart;
      Alcotest.test_case "exhausted budget quarantines the shard" `Quick
        test_supervise_quarantine;
      Alcotest.test_case "hung worker is killed and relaunched" `Quick test_supervise_hang;
      Alcotest.test_case "sequence gaps count dropped lines" `Quick
        test_supervise_lines_dropped;
      Alcotest.test_case "coordinate stays fail-fast" `Quick test_coordinate_fail_fast;
    ] )
