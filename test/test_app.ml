module App = Sw_backend.App

let p = Sw_arch.Params.default

let config = Sw_sim.Config.default p

let lowered name scale =
  let e = Sw_workloads.Registry.find_exn name in
  Sw_swacc.Lower.lower_exn p (e.Sw_workloads.Registry.build ~scale) e.Sw_workloads.Registry.variant

let test_make_rejects_empty () =
  match App.make [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty app rejected"

let test_stages_add_up () =
  let l = lowered "vector-add" 0.125 in
  let one = App.make ~launch_overhead_cycles:0.0 [ ("a", l) ] in
  let three = App.make ~launch_overhead_cycles:0.0 [ ("a", l); ("b", l); ("c", l) ] in
  Alcotest.(check (float 1e-6)) "simulate adds" (3.0 *. App.simulate config one)
    (App.simulate config three);
  Alcotest.(check (float 1e-6)) "predict adds" (3.0 *. App.predict p one) (App.predict p three)

let test_launch_overhead_charged () =
  let l = lowered "vector-add" 0.125 in
  let base = App.predict p (App.make ~launch_overhead_cycles:0.0 [ ("a", l) ]) in
  let with_launch = App.predict p (App.make ~launch_overhead_cycles:7000.0 [ ("a", l) ]) in
  Alcotest.(check (float 1e-6)) "overhead added" (base +. 7000.0) with_launch

let test_evaluate_accuracy () =
  let a = lowered "vector-add" 0.25 in
  let b = lowered "lud" 0.5 in
  let report = App.evaluate config (App.make [ ("vadd", a); ("lud", b) ]) in
  Alcotest.(check int) "two stages" 2 (List.length report.App.per_stage);
  Alcotest.(check bool)
    (Printf.sprintf "end-to-end error %.1f%% under 10%%" (report.App.error *. 100.0))
    true (report.App.error < 0.10);
  Alcotest.(check bool) "totals consistent" true
    (report.App.predicted_total > 0.0 && report.App.measured_total > 0.0)

let test_pp_report () =
  let l = lowered "vector-add" 0.125 in
  let report = App.evaluate config (App.make [ ("only", l) ]) in
  Alcotest.(check bool) "prints" true
    (String.length (Format.asprintf "%a" App.pp_report report) > 40)

let tests =
  ( "app",
    [
      Alcotest.test_case "rejects empty" `Quick test_make_rejects_empty;
      Alcotest.test_case "stages add up" `Quick test_stages_add_up;
      Alcotest.test_case "launch overhead charged" `Quick test_launch_overhead_charged;
      Alcotest.test_case "end-to-end accuracy" `Quick test_evaluate_accuracy;
      Alcotest.test_case "report prints" `Quick test_pp_report;
    ] )
