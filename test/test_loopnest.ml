open Sw_swacc

let p = Sw_arch.Params.default

(* matvec: y[i] = sum_j A[i][j] * x[j] — one of each index shape *)
let matvec_arrays =
  [ Loopnest.array_ "A" `IJ; Loopnest.array_ "x" `J; Loopnest.array_ ~elem_bytes:8 "y" `I ]

let matvec_body =
  [
    Body.Accum ("acc", Body.OAdd, Body.Mul (Body.load "A", Body.load "x"));
    Body.Store ("y", Body.Acc "acc");
  ]

let matvec () =
  Loopnest.compile ~name:"matvec" ~outer:4096 ~inner:256 ~arrays:matvec_arrays ~body:matvec_body ()

let find_copy k name =
  List.find (fun (c : Kernel.copy_spec) -> c.Kernel.array_name = name) k.Kernel.copies

let test_copy_plan () =
  let k = matvec () in
  let a = find_copy k "A" and x = find_copy k "x" and y = find_copy k "y" in
  Alcotest.(check int) "A carries a row per element" (256 * 4) a.Kernel.bytes_per_elem;
  Alcotest.(check bool) "A is copy-in" true (a.Kernel.direction = Kernel.In);
  Alcotest.(check bool) "x is chunk-shared" true (x.Kernel.freq = Kernel.Per_chunk);
  Alcotest.(check int) "x holds the whole vector" (256 * 4) x.Kernel.bytes_per_elem;
  Alcotest.(check bool) "y is copy-out" true (y.Kernel.direction = Kernel.Out);
  Alcotest.(check int) "y element size" 8 y.Kernel.bytes_per_elem;
  Alcotest.(check int) "inner extent becomes trips" 256 k.Kernel.body_trips_per_element

let test_inout_detection () =
  let body = [ Body.Store ("A", Body.Add (Body.load "A", Body.Const 1.0)) ] in
  let k =
    Loopnest.compile ~name:"inc" ~outer:64 ~inner:1 ~arrays:[ Loopnest.array_ "A" `I ] ~body ()
  in
  Alcotest.(check bool) "read+write = Inout" true
    ((find_copy k "A").Kernel.direction = Kernel.Inout)

let test_unused_array_dropped () =
  let k =
    Loopnest.compile ~name:"drop" ~outer:64 ~inner:1
      ~arrays:[ Loopnest.array_ "used" `I; Loopnest.array_ "unused" `I ]
      ~body:[ Body.Store ("used", Body.Const 0.0) ]
      ()
  in
  Alcotest.(check int) "only the used array is copied" 1 (List.length k.Kernel.copies)

let test_undeclared_rejected () =
  match
    Loopnest.compile ~name:"bad" ~outer:4 ~inner:1 ~arrays:[]
      ~body:[ Body.Store ("ghost", Body.Const 0.0) ]
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undeclared array should be rejected"

let test_shared_store_rejected () =
  match
    Loopnest.compile ~name:"race" ~outer:4 ~inner:4
      ~arrays:[ Loopnest.array_ "s" `J ]
      ~body:[ Body.Store ("s", Body.Const 0.0) ]
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "store to shared array should be rejected"

let test_bad_extent_rejected () =
  match
    Loopnest.compile ~name:"bad" ~outer:0 ~inner:1 ~arrays:[ Loopnest.array_ "a" `I ]
      ~body:[ Body.Store ("a", Body.Const 0.0) ]
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero extent should be rejected"

let test_spm_estimate_matches_kernel () =
  let k = matvec () in
  Alcotest.(check int) "estimate equals the compiled kernel's need"
    (Kernel.spm_bytes_per_chunk k ~grain:8)
    (Loopnest.spm_estimate ~arrays:matvec_arrays ~inner:256 ~grain:8)

let test_compiles_and_runs_end_to_end () =
  let k = matvec () in
  let variant = { Kernel.grain = 4; unroll = 2; active_cpes = 64; double_buffer = false } in
  let lowered = Lower.lower_exn p k variant in
  let config = Sw_sim.Config.default p in
  let row = Sw_backend.Accuracy.evaluate config lowered in
  Alcotest.(check bool)
    (Printf.sprintf "model tracks the nest (%.1f%%)" (Sw_backend.Accuracy.error row *. 100.0))
    true
    (Sw_backend.Accuracy.error row < 0.10)

let test_matches_handwritten_vadd () =
  (* the Figure-3 vector-add, declared as a nest, must lower to the same
     request structure as the hand-written workload *)
  let nest =
    Loopnest.compile ~name:"vadd-nest" ~outer:(1 lsl 20) ~inner:1
      ~arrays:
        [ Loopnest.array_ ~elem_bytes:8 "a" `I; Loopnest.array_ ~elem_bytes:8 "b" `I;
          Loopnest.array_ ~elem_bytes:8 "c" `I ]
      ~body:[ Body.Store ("c", Body.Add (Body.load "a", Body.load "b")) ]
      ()
  in
  let hand = Sw_workloads.Vadd.kernel ~scale:1.0 in
  let v = Sw_workloads.Vadd.variant in
  let s_nest = (Lower.lower_exn p nest v).Lowered.summary in
  let s_hand = (Lower.lower_exn p hand v).Lowered.summary in
  Alcotest.(check (float 1e-9)) "same request count"
    (Lowered.dma_requests_per_cpe s_hand)
    (Lowered.dma_requests_per_cpe s_nest);
  Alcotest.(check (float 1e-9)) "same avg MRT" (Lowered.avg_mrt s_hand) (Lowered.avg_mrt s_nest)

let tests =
  ( "loopnest",
    [
      Alcotest.test_case "copy plan derivation" `Quick test_copy_plan;
      Alcotest.test_case "inout detection" `Quick test_inout_detection;
      Alcotest.test_case "unused arrays dropped" `Quick test_unused_array_dropped;
      Alcotest.test_case "undeclared array rejected" `Quick test_undeclared_rejected;
      Alcotest.test_case "shared-array store rejected" `Quick test_shared_store_rejected;
      Alcotest.test_case "bad extent rejected" `Quick test_bad_extent_rejected;
      Alcotest.test_case "spm estimate" `Quick test_spm_estimate_matches_kernel;
      Alcotest.test_case "nest runs end to end" `Quick test_compiles_and_runs_end_to_end;
      Alcotest.test_case "nest matches hand-written vadd" `Quick test_matches_handwritten_vadd;
    ] )
