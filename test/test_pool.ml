(* The domain pool: order preservation, exception propagation, and the
   bit-identical-results guarantee the parallel tuners rely on.  Also
   covers the shared schedule-cost cache the pooled runs lean on. *)

let p = Sw_arch.Params.default

let config = Sw_sim.Config.default p

let pool n = Sw_util.Pool.create ~size:n ()

let sizes = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool basics *)

let test_map_matches_sequential () =
  let xs = List.init 57 (fun i -> i) in
  let f x = (x * x) - (3 * x) in
  let expected = List.map f xs in
  List.iter
    (fun n ->
      Alcotest.(check (list int))
        (Printf.sprintf "map, %d domains" n)
        expected
        (Sw_util.Pool.map (pool n) f xs))
    sizes

let test_filter_map_matches_sequential () =
  let xs = List.init 40 (fun i -> i) in
  let f x = if x mod 3 = 0 then Some (x * 2) else None in
  let expected = List.filter_map f xs in
  List.iter
    (fun n ->
      Alcotest.(check (list int))
        (Printf.sprintf "filter_map, %d domains" n)
        expected
        (Sw_util.Pool.filter_map (pool n) f xs))
    sizes

let test_empty_and_tiny_lists () =
  List.iter
    (fun n ->
      Alcotest.(check (list int)) "empty list" [] (Sw_util.Pool.map (pool n) (fun x -> x) []);
      Alcotest.(check (list int))
        "fewer items than domains" [ 10 ]
        (Sw_util.Pool.map (pool n) (fun x -> x * 10) [ 1 ]))
    sizes

let test_map_array () =
  let input = Array.init 23 (fun i -> i) in
  Alcotest.(check (array int))
    "map_array" (Array.map succ input)
    (Sw_util.Pool.map_array (pool 4) succ input)

exception Boom of int

let test_exception_propagation () =
  (* several items fail; the earliest index must win, whatever the
     domain interleaving *)
  let xs = List.init 30 (fun i -> i) in
  let f x = if x mod 7 = 5 then raise (Boom x) else x in
  List.iter
    (fun n ->
      match Sw_util.Pool.map (pool n) f xs with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x ->
          Alcotest.(check int) (Printf.sprintf "earliest failure, %d domains" n) 5 x)
    sizes

let test_size_clamped () =
  Alcotest.(check int) "size 0 clamps to 1" 1 (Sw_util.Pool.size (pool 0));
  Alcotest.(check int) "sequential is size 1" 1 (Sw_util.Pool.size Sw_util.Pool.sequential);
  Alcotest.(check bool) "default size positive" true (Sw_util.Pool.default_size () >= 1)

(* ------------------------------------------------------------------ *)
(* Determinism of the pooled tuners and sweeps *)

let tuner_outcomes method_ =
  let entry = Sw_workloads.Registry.find_exn "kmeans" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:0.25 in
  let points =
    Sw_tuning.Space.enumerate ~grains:entry.Sw_workloads.Registry.grains
      ~unrolls:entry.Sw_workloads.Registry.unrolls ()
  in
  let baseline = Sw_tuning.Tuner.tune_exn ~backend:(Sw_tuning.Tuner.backend_of_method method_) config kernel ~points in
  let pooled =
    List.map (fun n -> (n, Sw_tuning.Tuner.tune_exn ~backend:(Sw_tuning.Tuner.backend_of_method method_) ~pool:(pool n) config kernel ~points)) sizes
  in
  (baseline, pooled)

let check_same_outcome name (a : Sw_tuning.Tuner.outcome) (b : Sw_tuning.Tuner.outcome) =
  Alcotest.(check bool) (name ^ ": best variant") true (a.Sw_tuning.Tuner.best = b.Sw_tuning.Tuner.best);
  Alcotest.(check (float 0.0)) (name ^ ": best cycles") a.Sw_tuning.Tuner.best_cycles
    b.Sw_tuning.Tuner.best_cycles;
  Alcotest.(check (float 0.0))
    (name ^ ": machine time")
    a.Sw_tuning.Tuner.machine_time_us b.Sw_tuning.Tuner.machine_time_us;
  Alcotest.(check int) (name ^ ": evaluated") a.Sw_tuning.Tuner.evaluated b.Sw_tuning.Tuner.evaluated;
  Alcotest.(check int) (name ^ ": infeasible") a.Sw_tuning.Tuner.infeasible
    b.Sw_tuning.Tuner.infeasible

let test_tuner_deterministic_static () =
  let baseline, pooled = tuner_outcomes Sw_tuning.Tuner.Static in
  List.iter
    (fun (n, o) -> check_same_outcome (Printf.sprintf "static, %d domains" n) baseline o)
    pooled

let test_tuner_deterministic_empirical () =
  let baseline, pooled = tuner_outcomes Sw_tuning.Tuner.Empirical in
  List.iter
    (fun (n, o) -> check_same_outcome (Printf.sprintf "empirical, %d domains" n) baseline o)
    pooled

let test_fig6_rows_identical () =
  let baseline = Sw_experiments.Fig6.run ~scale:0.25 () in
  List.iter
    (fun n ->
      let rows = Sw_experiments.Fig6.run ~scale:0.25 ~pool:(pool n) () in
      Alcotest.(check bool)
        (Printf.sprintf "fig6 rows, %d domains" n)
        true (rows = baseline))
    sizes

let test_tuner_wall_clock_sane () =
  let entry = Sw_workloads.Registry.find_exn "lud" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:0.5 in
  let points =
    Sw_tuning.Space.enumerate ~grains:entry.Sw_workloads.Registry.grains
      ~unrolls:entry.Sw_workloads.Registry.unrolls ()
  in
  let o = Sw_tuning.Tuner.tune_exn ~backend:Sw_backend.Backend.simulator config kernel ~points in
  Alcotest.(check bool) "wall clock non-negative" true (o.Sw_tuning.Tuner.tuning_host_s >= 0.0);
  Alcotest.(check bool) "cpu seconds non-negative" true (o.Sw_tuning.Tuner.tuning_cpu_s >= 0.0)

(* ------------------------------------------------------------------ *)
(* Shared schedule-cost cache *)

let test_schedule_cache_consistent () =
  let kernel = Sw_workloads.Kmeans.kernel ~scale:0.25 in
  let block = Sw_swacc.Codegen.block ~unroll:4 kernel.Sw_swacc.Kernel.body in
  Sw_isa.Schedule.clear_cache ();
  let once_c, steady_c = Sw_isa.Schedule.block_costs p block in
  let once_direct = float_of_int (Sw_isa.Schedule.once p block).Sw_isa.Schedule.completion in
  let steady_direct = Sw_isa.Schedule.steady_cycles p block in
  Alcotest.(check (float 0.0)) "cached once = computed once" once_direct once_c;
  Alcotest.(check (float 0.0)) "cached steady = computed steady" steady_direct steady_c;
  (* a second lookup is a hit and returns the same pair *)
  let hits0, misses0 = Sw_isa.Schedule.cache_stats () in
  let once_c2, steady_c2 = Sw_isa.Schedule.block_costs p block in
  let hits1, misses1 = Sw_isa.Schedule.cache_stats () in
  Alcotest.(check (float 0.0)) "hit once" once_c once_c2;
  Alcotest.(check (float 0.0)) "hit steady" steady_c steady_c2;
  Alcotest.(check int) "one more hit" (hits0 + 1) hits1;
  Alcotest.(check int) "no more misses" misses0 misses1

let test_schedule_cache_keyed_by_params () =
  let kernel = Sw_workloads.Kmeans.kernel ~scale:0.25 in
  let block = Sw_swacc.Codegen.block ~unroll:2 kernel.Sw_swacc.Kernel.body in
  let slow = { p with Sw_arch.Params.l_float = p.Sw_arch.Params.l_float * 4 } in
  Sw_isa.Schedule.clear_cache ();
  let once_fast, _ = Sw_isa.Schedule.block_costs p block in
  let once_slow, _ = Sw_isa.Schedule.block_costs slow block in
  Alcotest.(check bool) "different params, different entries" true (once_slow > once_fast)

let test_engine_consistent_after_cache_clear () =
  (* a simulation served by a warm cache must equal a cold one *)
  let entry = Sw_workloads.Registry.find_exn "hotspot" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:0.5 in
  let lowered = Sw_swacc.Lower.lower_exn p kernel entry.Sw_workloads.Registry.variant in
  Sw_isa.Schedule.clear_cache ();
  let cold = Sw_backend.Machine.cycles config lowered in
  let warm = Sw_backend.Machine.cycles config lowered in
  Alcotest.(check (float 0.0)) "cold = warm" cold warm

let tests =
  ( "pool",
    [
      Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
      Alcotest.test_case "filter_map matches sequential" `Quick test_filter_map_matches_sequential;
      Alcotest.test_case "empty and tiny lists" `Quick test_empty_and_tiny_lists;
      Alcotest.test_case "map_array" `Quick test_map_array;
      Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
      Alcotest.test_case "size clamping" `Quick test_size_clamped;
      Alcotest.test_case "static tuner deterministic" `Slow test_tuner_deterministic_static;
      Alcotest.test_case "empirical tuner deterministic" `Slow test_tuner_deterministic_empirical;
      Alcotest.test_case "fig6 rows identical" `Slow test_fig6_rows_identical;
      Alcotest.test_case "tuner wall clock sane" `Quick test_tuner_wall_clock_sane;
      Alcotest.test_case "schedule cache consistent" `Quick test_schedule_cache_consistent;
      Alcotest.test_case "schedule cache keyed by params" `Quick test_schedule_cache_keyed_by_params;
      Alcotest.test_case "engine consistent across cache states" `Quick
        test_engine_consistent_after_cache_clear;
    ] )
