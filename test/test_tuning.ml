open Sw_tuning

let p = Sw_arch.Params.default

let config = Sw_sim.Config.default p

let test_enumerate_size () =
  let pts = Space.enumerate ~grains:[ 1; 2; 4 ] ~unrolls:[ 1; 2 ] () in
  Alcotest.(check int) "3x2 points" 6 (List.length pts);
  Alcotest.(check int) "size helper" 6 (Space.size ~grains:[ 1; 2; 4 ] ~unrolls:[ 1; 2 ] ())

let test_enumerate_db () =
  let pts = Space.enumerate ~grains:[ 1 ] ~unrolls:[ 1 ] ~double_buffers:[ false; true ] () in
  Alcotest.(check int) "db doubles the space" 2 (List.length pts)

let test_enumerate_deterministic () =
  let a = Space.enumerate ~grains:[ 2; 1 ] ~unrolls:[ 1; 4 ] () in
  let b = Space.enumerate ~grains:[ 2; 1 ] ~unrolls:[ 1; 4 ] () in
  Alcotest.(check bool) "same order" true (a = b)

let test_to_variant () =
  let v = Space.to_variant { Space.grain = 8; unroll = 2; double_buffer = true } ~active_cpes:32 in
  Alcotest.(check int) "grain" 8 v.Sw_swacc.Kernel.grain;
  Alcotest.(check int) "unroll" 2 v.Sw_swacc.Kernel.unroll;
  Alcotest.(check int) "active" 32 v.Sw_swacc.Kernel.active_cpes;
  Alcotest.(check bool) "db" true v.Sw_swacc.Kernel.double_buffer

let test_feasible_filters_spm () =
  let kernel = Sw_workloads.Lud.kernel ~scale:1.0 in
  (* lud rows are 2KB each plus a 2KB pivot: grain 64 would need 128KB *)
  let pts = Space.enumerate ~grains:[ 1; 2; 64 ] ~unrolls:[ 1 ] () in
  let ok = Space.feasible p kernel ~active_cpes:64 pts in
  Alcotest.(check int) "oversized grain dropped" 2 (List.length ok)

let points entry =
  Space.enumerate ~grains:entry.Sw_workloads.Registry.grains
    ~unrolls:entry.Sw_workloads.Registry.unrolls ()

let test_both_tuners_agree_on_kmeans () =
  let entry = Sw_workloads.Registry.find_exn "kmeans" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:0.25 in
  let pts = points entry in
  let static = Tuner.tune_exn ~backend:(Tuner.backend_of_method Tuner.Static) config kernel ~points:pts in
  let empirical = Tuner.tune_exn ~backend:(Tuner.backend_of_method Tuner.Empirical) config kernel ~points:pts in
  Alcotest.(check bool) "quality loss under 6% (paper bound)" true
    (Tuner.quality_loss ~static ~empirical < 0.06);
  Alcotest.(check bool) "static found a real improvement" true
    (static.Tuner.speedup > 1.2)

let test_static_never_simulates () =
  let entry = Sw_workloads.Registry.find_exn "lud" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:0.5 in
  let o = Tuner.tune_exn ~backend:(Tuner.backend_of_method Tuner.Static) config kernel ~points:(points entry) in
  Alcotest.(check (float 1e-9)) "no machine time" 0.0 o.Tuner.machine_time_us

let test_empirical_accumulates_machine_time () =
  let entry = Sw_workloads.Registry.find_exn "lud" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:0.5 in
  let o = Tuner.tune_exn ~backend:(Tuner.backend_of_method Tuner.Empirical) config kernel ~points:(points entry) in
  Alcotest.(check bool) "profiling runs cost machine time" true (o.Tuner.machine_time_us > 0.0);
  Alcotest.(check int) "all feasible points evaluated" (List.length (points entry))
    (o.Tuner.evaluated + o.Tuner.infeasible)

let test_infeasible_counted () =
  let entry = Sw_workloads.Registry.find_exn "lud" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:1.0 in
  let pts = Space.enumerate ~grains:[ 1; 512 ] ~unrolls:[ 1 ] () in
  let o = Tuner.tune_exn ~backend:(Tuner.backend_of_method Tuner.Static) config kernel ~points:pts in
  Alcotest.(check int) "oversized variant rejected at compile time" 1 o.Tuner.infeasible;
  Alcotest.(check int) "one evaluated" 1 o.Tuner.evaluated

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_no_feasible_point_typed_error () =
  let entry = Sw_workloads.Registry.find_exn "lud" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:1.0 in
  let pts = Space.enumerate ~grains:[ 4096 ] ~unrolls:[ 1 ] () in
  (match Tuner.tune ~backend:Sw_backend.Backend.static_model config kernel ~points:pts with
  | Error (`No_feasible_point msg) ->
      Alcotest.(check bool) "message names the backend" true
        (contains msg "model")
  | Ok _ -> Alcotest.fail "expected `No_feasible_point");
  match Tuner.tune_exn ~backend:Sw_backend.Backend.static_model config kernel ~points:pts with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "tune_exn: expected Invalid_argument"

let test_best_beats_default () =
  let entry = Sw_workloads.Registry.find_exn "backprop" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:0.125 in
  let o = Tuner.tune_exn ~backend:(Tuner.backend_of_method Tuner.Empirical) config kernel ~points:(points entry) in
  Alcotest.(check bool) "tuned variant at least as fast as default" true
    (o.Tuner.best_cycles <= o.Tuner.default_cycles +. 1.0)

let test_pp_outcome () =
  let entry = Sw_workloads.Registry.find_exn "lud" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:0.5 in
  let o = Tuner.tune_exn ~backend:(Tuner.backend_of_method Tuner.Static) config kernel ~points:(points entry) in
  Alcotest.(check bool) "pp" true (String.length (Format.asprintf "%a" Tuner.pp_outcome o) > 40)

let tests =
  ( "tuning",
    [
      Alcotest.test_case "enumerate size" `Quick test_enumerate_size;
      Alcotest.test_case "enumerate with db" `Quick test_enumerate_db;
      Alcotest.test_case "enumerate deterministic" `Quick test_enumerate_deterministic;
      Alcotest.test_case "to_variant" `Quick test_to_variant;
      Alcotest.test_case "feasible filters SPM" `Quick test_feasible_filters_spm;
      Alcotest.test_case "tuners agree on kmeans" `Slow test_both_tuners_agree_on_kmeans;
      Alcotest.test_case "static never simulates" `Quick test_static_never_simulates;
      Alcotest.test_case "empirical pays machine time" `Quick test_empirical_accumulates_machine_time;
      Alcotest.test_case "infeasible counted" `Quick test_infeasible_counted;
      Alcotest.test_case "no feasible point typed error" `Quick test_no_feasible_point_typed_error;
      Alcotest.test_case "best beats default" `Quick test_best_beats_default;
      Alcotest.test_case "pp outcome" `Quick test_pp_outcome;
    ] )
