(* The cost-backend layer: equivalence of each backend with the raw
   estimator it wraps, bit-identical pooled searches, the memoizer's
   accounting, the registry, and the hybrid's bracketing property. *)

module Backend = Sw_backend.Backend

let p = Sw_arch.Params.default

let config = Sw_sim.Config.default p

let pool n = Sw_util.Pool.create ~size:n ()

let entry name = Sw_workloads.Registry.find_exn name

let kernel_of name scale = (entry name).Sw_workloads.Registry.build ~scale

(* ------------------------------------------------------------------ *)
(* Equivalence with the raw estimators *)

let test_static_model_matches_predict () =
  let e = entry "kmeans" in
  let kernel = kernel_of "kmeans" 0.25 in
  let v = e.Sw_workloads.Registry.variant in
  let expected =
    match Sw_swacc.Lower.summarize p kernel v with
    | Ok s -> (Swpm.Predict.run p s).Swpm.Predict.t_total
    | Error msg -> failwith msg
  in
  let verdict = Result.get_ok (Backend.assess Backend.static_model config kernel v) in
  Alcotest.(check (float 0.0)) "cycles = Predict.run" expected verdict.Backend.cycles;
  Alcotest.(check (float 0.0)) "no machine time" 0.0
    verdict.Backend.cost.Backend.machine_us;
  Alcotest.(check bool) "carries the model breakdown" true
    (verdict.Backend.breakdown <> None)

let test_simulator_matches_engine () =
  let e = entry "lud" in
  let kernel = kernel_of "lud" 0.5 in
  let v = e.Sw_workloads.Registry.variant in
  let lowered = Sw_swacc.Lower.lower_exn p kernel v in
  let expected = Sw_backend.Machine.cycles config lowered in
  let verdict = Result.get_ok (Backend.assess Backend.simulator config kernel v) in
  Alcotest.(check (float 0.0)) "cycles = Engine.run" expected verdict.Backend.cycles;
  Alcotest.(check (float 0.0)) "machine time = execution time"
    (Sw_util.Units.cycles_to_us ~freq_hz:p.Sw_arch.Params.freq_hz expected)
    verdict.Backend.cost.Backend.machine_us

let test_roofline_matches_analyze () =
  let e = entry "nbody" in
  let kernel = kernel_of "nbody" 0.5 in
  let v = e.Sw_workloads.Registry.variant in
  let expected =
    match Sw_swacc.Lower.summarize p kernel v with
    | Ok s -> (Swpm.Roofline.analyze p s).Swpm.Roofline.predicted_cycles
    | Error msg -> failwith msg
  in
  let verdict = Result.get_ok (Backend.assess Backend.roofline config kernel v) in
  Alcotest.(check (float 0.0)) "cycles = Roofline.analyze" expected verdict.Backend.cycles

let test_infeasible_variant_rejected () =
  let kernel = kernel_of "lud" 1.0 in
  let v = { Sw_swacc.Kernel.grain = 4096; unroll = 1; active_cpes = 64; double_buffer = false } in
  List.iter
    (fun backend ->
      match Backend.assess backend config kernel v with
      | Error { Backend.backend = b; reason } ->
          Alcotest.(check string) "rejection names its backend" (Backend.name backend) b;
          Alcotest.(check bool) "reason non-empty" true (String.length reason > 0)
      | Ok _ -> Alcotest.fail (Backend.name backend ^ ": expected rejection"))
    [ Backend.static_model; Backend.simulator; Backend.hybrid (); Backend.roofline ]

(* ------------------------------------------------------------------ *)
(* Pre-refactor equivalence: the backend-driven tuner and Fig 6 rows
   must equal the hand-rolled search at pool sizes 1 and 4. *)

let hand_rolled_static_search kernel points =
  (* the pre-backend static tuner, inlined: summarize + Predict, argmin
     with strict < in enumeration order *)
  let scored =
    List.filter_map
      (fun (pt : Sw_tuning.Space.point) ->
        let v = Sw_tuning.Space.to_variant pt ~active_cpes:64 in
        match Sw_swacc.Lower.summarize p kernel v with
        | Error _ -> None
        | Ok s -> Some (pt, (Swpm.Predict.run p s).Swpm.Predict.t_total))
      points
  in
  match scored with
  | [] -> None
  | (p0, s0) :: rest ->
      Some
        (fst
           (List.fold_left
              (fun (bp, bs) (pt, s) -> if s < bs then (pt, s) else (bp, bs))
              (p0, s0) rest))

let test_tuner_matches_hand_rolled_search () =
  let e = entry "kmeans" in
  let kernel = kernel_of "kmeans" 0.25 in
  let points =
    Sw_tuning.Space.enumerate ~grains:e.Sw_workloads.Registry.grains
      ~unrolls:e.Sw_workloads.Registry.unrolls ()
  in
  let expected_best =
    match hand_rolled_static_search kernel points with
    | Some pt -> Sw_tuning.Space.to_variant pt ~active_cpes:64
    | None -> Alcotest.fail "search space unexpectedly empty"
  in
  List.iter
    (fun pool_opt ->
      let o =
        Sw_tuning.Tuner.tune_exn ~backend:Backend.static_model ?pool:pool_opt config kernel
          ~points
      in
      Alcotest.(check bool) "same pick as the pre-backend tuner" true
        (o.Sw_tuning.Tuner.best = expected_best))
    [ None; Some (pool 1); Some (pool 4) ]

let test_table2_rows_pool_invariant () =
  let baseline = Sw_experiments.Table2.run ~scale:0.25 () in
  List.iter
    (fun n ->
      let rows = Sw_experiments.Table2.run ~scale:0.25 ~pool:(pool n) () in
      List.iter2
        (fun (a : Sw_experiments.Table2.row) (b : Sw_experiments.Table2.row) ->
          Alcotest.(check string) "kernel" a.Sw_experiments.Table2.name b.Sw_experiments.Table2.name;
          Alcotest.(check bool) "static pick" true
            (a.static.Sw_tuning.Tuner.best = b.static.Sw_tuning.Tuner.best);
          Alcotest.(check bool) "empirical pick" true
            (a.empirical.Sw_tuning.Tuner.best = b.empirical.Sw_tuning.Tuner.best);
          Alcotest.(check (float 0.0)) "static best cycles" a.static.Sw_tuning.Tuner.best_cycles
            b.static.Sw_tuning.Tuner.best_cycles;
          Alcotest.(check (float 0.0))
            "empirical machine time" a.empirical.Sw_tuning.Tuner.machine_time_us
            b.empirical.Sw_tuning.Tuner.machine_time_us)
        baseline rows)
    [ 1; 4 ]

let test_fig6_rows_pool_invariant () =
  let baseline = Sw_experiments.Fig6.run ~scale:0.25 () in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "fig6 rows, %d domains" n)
        true
        (Sw_experiments.Fig6.run ~scale:0.25 ~pool:(pool n) () = baseline))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Memoizer *)

let test_memo_hit_miss_accounting () =
  let memo = Backend.memoize Backend.static_model in
  let b = Backend.memoized memo in
  let e = entry "kmeans" in
  let kernel = kernel_of "kmeans" 0.25 in
  let v = e.Sw_workloads.Registry.variant in
  let v2 = { v with Sw_swacc.Kernel.unroll = v.Sw_swacc.Kernel.unroll + 1 } in
  let first = Result.get_ok (Backend.assess b config kernel v) in
  Alcotest.(check int) "one miss" 1 (Backend.memo_misses memo);
  Alcotest.(check int) "no hits yet" 0 (Backend.memo_hits memo);
  let second = Result.get_ok (Backend.assess b config kernel v) in
  Alcotest.(check int) "second is a hit" 1 (Backend.memo_hits memo);
  Alcotest.(check (float 0.0)) "same cycles" first.Backend.cycles second.Backend.cycles;
  Alcotest.(check (float 0.0)) "hit costs nothing" 0.0
    second.Backend.cost.Backend.host_wall_s;
  ignore (Backend.assess b config kernel v2);
  Alcotest.(check int) "different variant misses" 2 (Backend.memo_misses memo);
  Backend.memo_clear memo;
  ignore (Backend.assess b config kernel v);
  Alcotest.(check int) "cleared table misses again" 3 (Backend.memo_misses memo)

let test_memo_caches_infeasibility () =
  let memo = Backend.memoize Backend.static_model in
  let b = Backend.memoized memo in
  let kernel = kernel_of "lud" 1.0 in
  let v = { Sw_swacc.Kernel.grain = 4096; unroll = 1; active_cpes = 64; double_buffer = false } in
  (match Backend.assess b config kernel v with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection");
  (match Backend.assess b config kernel v with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected cached rejection");
  Alcotest.(check int) "rejection cached" 1 (Backend.memo_hits memo);
  Alcotest.(check int) "computed once" 1 (Backend.memo_misses memo)

let test_memo_composes_with_pool () =
  let memo = Backend.memoize Backend.static_model in
  let b = Backend.memoized memo in
  let e = entry "kmeans" in
  let kernel = kernel_of "kmeans" 0.25 in
  let points =
    Sw_tuning.Space.enumerate ~grains:e.Sw_workloads.Registry.grains
      ~unrolls:e.Sw_workloads.Registry.unrolls ()
  in
  let o1 = Sw_tuning.Tuner.tune_exn ~backend:b ~pool:(pool 4) config kernel ~points in
  let misses_after_first = Backend.memo_misses memo in
  let o2 = Sw_tuning.Tuner.tune_exn ~backend:b ~pool:(pool 4) config kernel ~points in
  Alcotest.(check bool) "same pick through the memo" true
    (o1.Sw_tuning.Tuner.best = o2.Sw_tuning.Tuner.best);
  Alcotest.(check int) "second search computes nothing new" misses_after_first
    (Backend.memo_misses memo);
  Alcotest.(check bool) "second search served from cache" true
    (Backend.memo_hits memo >= List.length points)

(* ------------------------------------------------------------------ *)
(* Hybrid *)

let test_hybrid_no_gloads_equals_static () =
  let e = entry "kmeans" in
  let kernel = kernel_of "kmeans" 0.25 in
  let v = e.Sw_workloads.Registry.variant in
  let s = Result.get_ok (Backend.assess Backend.static_model config kernel v) in
  let h = Result.get_ok (Backend.assess (Backend.hybrid ()) config kernel v) in
  Alcotest.(check (float 0.0)) "identical to the static model" s.Backend.cycles
    h.Backend.cycles;
  Alcotest.(check (float 0.0)) "never profiles" 0.0 h.Backend.cost.Backend.machine_us

let test_hybrid_profiles_once_per_kernel () =
  let e = entry "bfs" in
  let kernel = kernel_of "bfs" 0.25 in
  let v = e.Sw_workloads.Registry.variant in
  let v2 = { v with Sw_swacc.Kernel.unroll = v.Sw_swacc.Kernel.unroll + 1 } in
  let b = Backend.hybrid () in
  let first = Result.get_ok (Backend.assess b config kernel v) in
  let second = Result.get_ok (Backend.assess b config kernel v2) in
  Alcotest.(check bool) "first assessment pays the profile" true
    (first.Backend.cost.Backend.machine_us > 0.0);
  Alcotest.(check (float 0.0)) "later assessments are free" 0.0
    second.Backend.cost.Backend.machine_us

let test_hybrid_pool_deterministic () =
  (* same verdict cycles whatever the assessment order: compare a fresh
     sequential instance against a fresh pooled one *)
  let e = entry "bfs" in
  let kernel = kernel_of "bfs" 0.25 in
  let points =
    Sw_tuning.Space.enumerate ~grains:e.Sw_workloads.Registry.grains
      ~unrolls:e.Sw_workloads.Registry.unrolls ()
  in
  let run pool_opt =
    let o =
      Sw_tuning.Tuner.tune_exn ~backend:(Backend.hybrid ()) ?pool:pool_opt config kernel ~points
    in
    (o.Sw_tuning.Tuner.best, o.Sw_tuning.Tuner.best_cycles, o.Sw_tuning.Tuner.evaluated)
  in
  let baseline = run None in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "hybrid search, %d domains" n)
        true
        (run (Some (pool n)) = baseline))
    [ 1; 4 ]

(* QCheck property: on the registry's kernels the hybrid estimate is
   bracketed by the static model and the simulator (with 5% slack for
   the calibration transfer); on gload-free kernels it equals the
   static model exactly. *)
let prop_hybrid_bracketed =
  let entries = Array.of_list Sw_workloads.Registry.all in
  QCheck.Test.make ~name:"hybrid bracketed by static model and simulator" ~count:25
    QCheck.(triple (int_range 0 (Array.length entries - 1)) (int_range 0 3) (int_range 1 4))
    (fun (ei, gi, unroll) ->
      let e = entries.(ei) in
      let kernel = e.Sw_workloads.Registry.build ~scale:0.25 in
      let grain = List.nth [ 8; 16; 32; 64 ] gi in
      let v = { Sw_swacc.Kernel.grain; unroll; active_cpes = 64; double_buffer = false } in
      match Backend.assess (Backend.hybrid ()) config kernel v with
      | Error _ -> QCheck.assume_fail () (* infeasible variant: vacuous *)
      | Ok h ->
          let s = Result.get_ok (Backend.assess Backend.static_model config kernel v) in
          let m = Result.get_ok (Backend.assess Backend.simulator config kernel v) in
          let has_gloads = kernel.Sw_swacc.Kernel.gloads <> None in
          if not has_gloads then h.Backend.cycles = s.Backend.cycles
          else
            let lo = Stdlib.min s.Backend.cycles m.Backend.cycles
            and hi = Stdlib.max s.Backend.cycles m.Backend.cycles in
            h.Backend.cycles >= (lo *. 0.95) && h.Backend.cycles <= (hi *. 1.05))

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_keys_and_aliases () =
  Alcotest.(check (list string)) "built-ins in order"
    [ "model"; "sim"; "hybrid"; "roofline" ]
    (Backend.registered ());
  List.iter
    (fun (alias, canonical) ->
      match Backend.find alias with
      | Some b -> Alcotest.(check string) alias canonical (Backend.name b)
      | None -> Alcotest.fail ("alias not found: " ^ alias))
    [
      ("static", "model");
      ("static-model", "model");
      ("empirical", "sim");
      ("simulator", "sim");
      ("MODEL", "model");
      ("Hybrid", "hybrid");
      ("roofline", "roofline");
    ];
  Alcotest.(check bool) "unknown key" true (Backend.find "magic" = None);
  match Backend.find_exn "magic" with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "lists the known backends" true
        (String.length msg > String.length "magic")
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_registry_fresh_hybrid_instances () =
  (* two lookups must not share a calibration cache: each pays its own
     profile on first assessment *)
  let e = entry "bfs" in
  let kernel = kernel_of "bfs" 0.25 in
  let v = e.Sw_workloads.Registry.variant in
  let cost1 =
    (Result.get_ok (Backend.assess (Backend.find_exn "hybrid") config kernel v)).Backend.cost
  in
  let cost2 =
    (Result.get_ok (Backend.assess (Backend.find_exn "hybrid") config kernel v)).Backend.cost
  in
  Alcotest.(check bool) "both instances profile" true
    (cost1.Backend.machine_us > 0.0 && cost2.Backend.machine_us > 0.0)

let test_register_custom_backend () =
  let custom : Backend.t =
    (module struct
      let name = "oracle"

      let description = "test backend"

      let assess ?cutoff:_ ?event_budget:_ _ _ _ =
        Backend.Assessed { Backend.cycles = 42.0; cost = Backend.zero_cost; breakdown = None }
    end)
  in
  Backend.register "oracle" (fun () -> custom);
  (match Backend.find "oracle" with
  | Some b ->
      let kernel = kernel_of "kmeans" 0.25 in
      let v = (entry "kmeans").Sw_workloads.Registry.variant in
      Alcotest.(check (float 0.0)) "custom backend answers" 42.0
        (Backend.cycles_exn b config kernel v)
  | None -> Alcotest.fail "custom backend not registered");
  Alcotest.(check bool) "appears in the listing" true
    (List.mem "oracle" (Backend.registered ()))

let tests =
  ( "backend",
    [
      Alcotest.test_case "static model = Predict.run" `Quick test_static_model_matches_predict;
      Alcotest.test_case "simulator = Engine.run" `Quick test_simulator_matches_engine;
      Alcotest.test_case "roofline = Roofline.analyze" `Quick test_roofline_matches_analyze;
      Alcotest.test_case "infeasible variant rejected" `Quick test_infeasible_variant_rejected;
      Alcotest.test_case "tuner = hand-rolled search" `Quick test_tuner_matches_hand_rolled_search;
      Alcotest.test_case "table2 rows pool-invariant" `Slow test_table2_rows_pool_invariant;
      Alcotest.test_case "fig6 rows pool-invariant" `Slow test_fig6_rows_pool_invariant;
      Alcotest.test_case "memo hit/miss accounting" `Quick test_memo_hit_miss_accounting;
      Alcotest.test_case "memo caches infeasibility" `Quick test_memo_caches_infeasibility;
      Alcotest.test_case "memo composes with pool" `Quick test_memo_composes_with_pool;
      Alcotest.test_case "hybrid = static without gloads" `Quick test_hybrid_no_gloads_equals_static;
      Alcotest.test_case "hybrid profiles once" `Quick test_hybrid_profiles_once_per_kernel;
      Alcotest.test_case "hybrid pool-deterministic" `Quick test_hybrid_pool_deterministic;
      QCheck_alcotest.to_alcotest prop_hybrid_bracketed;
      Alcotest.test_case "registry keys and aliases" `Quick test_registry_keys_and_aliases;
      Alcotest.test_case "registry hybrids are fresh" `Quick test_registry_fresh_hybrid_instances;
      Alcotest.test_case "register custom backend" `Quick test_register_custom_backend;
    ] )
