(* Fault injection: configuration validation, deterministic fault
   planning, engine-level retry/backoff/straggler/throttle semantics,
   and the bit-identical-replay property that makes faulty runs exactly
   as reproducible as fault-free ones. *)

module Config = Sw_sim.Config
module Engine = Sw_sim.Engine
module Fault = Sw_fault.Fault

let p = Sw_arch.Params.default

let config = Config.default p

let entry name = Sw_workloads.Registry.find_exn name

let lowered_of name scale variant =
  let kernel = (entry name).Sw_workloads.Registry.build ~scale in
  Sw_swacc.Lower.lower_exn p kernel variant

let programs_of name scale =
  let e = entry name in
  (lowered_of name scale e.Sw_workloads.Registry.variant).Sw_swacc.Lowered.programs

(* ------------------------------------------------------------------ *)
(* Config validation (satellite: typed Invalid_config at construction) *)

let expect_invalid label c =
  match Config.validate c with
  | Error msg -> Alcotest.(check bool) (label ^ ": message non-empty") true (String.length msg > 0)
  | Ok _ -> Alcotest.fail (label ^ ": expected Error")

let test_validate_rejects_bad_machine () =
  let bad_bw =
    { config with Config.params = { p with Sw_arch.Params.mem_bw_bytes_per_s = 0.0 } }
  in
  expect_invalid "zero bandwidth" bad_bw;
  let bad_lat = { config with Config.params = { p with Sw_arch.Params.l_base = -1 } } in
  expect_invalid "negative latency" bad_lat;
  let bad_cpes = { config with Config.params = { p with Sw_arch.Params.cpes_per_cg = 0 } } in
  expect_invalid "zero CPEs" bad_cpes;
  let bad_overhead = { config with Config.dma_issue_cost = -1 } in
  expect_invalid "negative overhead" bad_overhead

let test_validate_rejects_bad_faults () =
  let with_faults f = { config with Config.faults = f } in
  let ok = Config.no_faults in
  expect_invalid "fail prob >= 1" (with_faults { ok with Config.dma_fail_prob = 1.0 });
  expect_invalid "negative fail prob" (with_faults { ok with Config.dma_fail_prob = -0.1 });
  expect_invalid "fail prob without retry budget"
    (with_faults { ok with Config.dma_fail_prob = 0.5; dma_max_retries = 0 });
  expect_invalid "straggler speedup"
    (with_faults { ok with Config.stragglers = [ (0, 0.5) ] });
  expect_invalid "negative straggler id"
    (with_faults { ok with Config.stragglers = [ (-1, 2.0) ] });
  expect_invalid "throttle factor > 1"
    (with_faults
       {
         ok with
         Config.mc_throttles =
           [ (0, { Config.from_cycle = 0.0; until_cycle = 10.0; bw_factor = 1.5 }) ];
       });
  expect_invalid "empty throttle window"
    (with_faults
       {
         ok with
         Config.mc_throttles =
           [ (0, { Config.from_cycle = 10.0; until_cycle = 10.0; bw_factor = 0.5 }) ];
       })

let test_validated_raises_and_engine_guards () =
  let bad = { config with Config.params = { p with Sw_arch.Params.mem_bw_bytes_per_s = 0.0 } } in
  (match Config.validated bad with
  | exception Config.Invalid_config msg ->
      Alcotest.(check bool) "names the field" true (String.length msg > 0)
  | _ -> Alcotest.fail "expected Invalid_config");
  match Engine.run bad (programs_of "kmeans" 0.25) with
  | exception Config.Invalid_config _ -> ()
  | _ -> Alcotest.fail "engine accepted an invalid config"

let test_valid_config_roundtrips () =
  match Config.validate config with
  | Ok c -> Alcotest.(check bool) "unchanged" true (c = config)
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Fault planning *)

let test_plan_deterministic () =
  let a = Fault.plan ~spec:Fault.harsh ~seed:7 config in
  let b = Fault.plan ~spec:Fault.harsh ~seed:7 config in
  Alcotest.(check bool) "same (spec, seed, config) => same plan" true (a = b);
  let c = Fault.plan ~spec:Fault.harsh ~seed:8 config in
  Alcotest.(check bool) "different seed => different plan" true (a <> c)

let test_plan_none_is_identity_plus_seed () =
  let a = Fault.plan ~spec:Fault.none ~seed:3 config in
  Alcotest.(check bool) "no live fault channel" false (Config.faults_active a.Config.faults);
  Alcotest.(check bool) "machine parameters untouched" true (a.Config.params = config.Config.params)

let test_plan_activates_channels () =
  let a = Fault.plan ~spec:Fault.mild ~seed:1 config in
  Alcotest.(check bool) "faults active" true (Config.faults_active a.Config.faults);
  Alcotest.(check int) "seed threaded" 1 a.Config.faults.Config.fault_seed;
  Alcotest.(check int) "stragglers placed" Fault.mild.Fault.n_stragglers
    (List.length a.Config.faults.Config.stragglers);
  Alcotest.(check int) "throttles placed" Fault.mild.Fault.n_throttles
    (List.length a.Config.faults.Config.mc_throttles);
  (* distinct straggler ids *)
  let h = Fault.plan ~spec:Fault.harsh ~seed:1 config in
  let ids = List.map fst h.Config.faults.Config.stragglers in
  Alcotest.(check int) "straggler ids distinct" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  match Config.validate a with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("plan produced invalid config: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Engine semantics under faults *)

let high_fail_config =
  {
    config with
    Config.faults =
      {
        Config.no_faults with
        Config.fault_seed = 11;
        dma_fail_prob = 0.5;
        dma_max_retries = 4;
        dma_backoff_cycles = 32;
      };
  }

let test_retries_surface_in_metrics_and_trace () =
  let programs = programs_of "kmeans" 0.25 in
  let m, _, _, retries = Engine.run_traced_full high_fail_config programs in
  Alcotest.(check bool) "retries observed" true (m.Sw_sim.Metrics.retries > 0);
  Alcotest.(check bool) "backoff cycles billed" true (m.Sw_sim.Metrics.backoff_cycles > 0.0);
  Alcotest.(check int) "trace records every retry" m.Sw_sim.Metrics.retries
    (List.length retries);
  List.iter
    (fun (r : Sw_sim.Trace.dma_retry) ->
      Alcotest.(check bool) "attempt counts from 1" true (r.Sw_sim.Trace.rt_attempt >= 1);
      Alcotest.(check bool) "attempt within budget" true
        (r.Sw_sim.Trace.rt_attempt <= high_fail_config.Config.faults.Config.dma_max_retries);
      Alcotest.(check bool) "backoff moves time forward" true
        (r.Sw_sim.Trace.t_retry > r.Sw_sim.Trace.t_fail))
    retries;
  (* faults delay, never deadlock: the run still finishes and is slower *)
  let nominal = Engine.run config programs in
  Alcotest.(check bool) "faulty run is slower" true
    (m.Sw_sim.Metrics.cycles > nominal.Sw_sim.Metrics.cycles)

let test_fault_free_run_unchanged_by_seed () =
  (* the fault PRNG must not leak into fault-free runs: only fault_seed
     differs, and no channel is live *)
  let programs = programs_of "nbody" 0.25 in
  let a = Engine.run config programs in
  let with_seed =
    { config with Config.faults = { Config.no_faults with Config.fault_seed = 999 } }
  in
  let b = Engine.run with_seed programs in
  Alcotest.(check bool) "identical metrics" true (a = b)

let test_straggler_slows_run () =
  let programs = programs_of "nbody" 0.25 in
  let nominal = Engine.run config programs in
  let slow =
    {
      config with
      Config.faults = { Config.no_faults with Config.stragglers = [ (0, 2.0) ] };
    }
  in
  let m = Engine.run slow programs in
  Alcotest.(check bool) "straggler extends the makespan" true
    (m.Sw_sim.Metrics.cycles > nominal.Sw_sim.Metrics.cycles);
  Alcotest.(check int) "no retries from stragglers" 0 m.Sw_sim.Metrics.retries

let test_throttle_slows_memory_bound_run () =
  let programs = programs_of "kmeans" 0.25 in
  let nominal = Engine.run config programs in
  let window = { Config.from_cycle = 0.0; until_cycle = 1e9; bw_factor = 0.25 } in
  let throttled =
    {
      config with
      Config.faults =
        {
          Config.no_faults with
          Config.mc_throttles = List.init p.Sw_arch.Params.n_cgs (fun mc -> (mc, window));
        };
    }
  in
  let m = Engine.run throttled programs in
  Alcotest.(check bool) "quartered bandwidth extends the makespan" true
    (m.Sw_sim.Metrics.cycles > nominal.Sw_sim.Metrics.cycles)

(* ------------------------------------------------------------------ *)
(* Determinism property: a faulty run replays bit-identically — same
   Metrics.t, same spans, same retry trail — however many times and at
   whatever pool fan-out the surrounding sweep uses. *)

let prop_fault_runs_bit_identical =
  let entries = [| "kmeans"; "nbody"; "lud"; "bfs" |] in
  QCheck.Test.make ~name:"faulty runs replay bit-identically" ~count:20
    QCheck.(
      triple (int_range 0 (Array.length entries - 1)) (int_range 1 1000) (int_range 0 2))
    (fun (ei, seed, severity) ->
      let spec = List.nth [ Fault.none; Fault.mild; Fault.harsh ] severity in
      let plan = Fault.plan ~spec ~seed config in
      let programs = programs_of entries.(ei) 0.25 in
      let a = Engine.run_traced_full plan programs in
      let b = Engine.run_traced_full plan programs in
      a = b)

let test_tuned_sweep_under_faults_pool_invariant () =
  let e = entry "kmeans" in
  let kernel = e.Sw_workloads.Registry.build ~scale:0.25 in
  let points =
    Sw_tuning.Space.enumerate ~grains:e.Sw_workloads.Registry.grains
      ~unrolls:e.Sw_workloads.Registry.unrolls ()
  in
  let plan = Fault.plan ~spec:Fault.harsh ~seed:5 config in
  let run pool_opt =
    let o =
      Sw_tuning.Tuner.tune_exn ~backend:Sw_backend.Backend.simulator ?pool:pool_opt plan kernel
        ~points
    in
    (o.Sw_tuning.Tuner.best, o.Sw_tuning.Tuner.best_cycles, o.Sw_tuning.Tuner.machine_time_us)
  in
  let baseline = run None in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "faulty sweep, %d domains" n)
        true
        (run (Some (Sw_util.Pool.create ~size:n ())) = baseline))
    [ 1; 4 ]

let tests =
  ( "fault",
    [
      Alcotest.test_case "validate rejects bad machine" `Quick test_validate_rejects_bad_machine;
      Alcotest.test_case "validate rejects bad faults" `Quick test_validate_rejects_bad_faults;
      Alcotest.test_case "validated raises; engine guards" `Quick
        test_validated_raises_and_engine_guards;
      Alcotest.test_case "valid config round-trips" `Quick test_valid_config_roundtrips;
      Alcotest.test_case "plan deterministic" `Quick test_plan_deterministic;
      Alcotest.test_case "plan none = identity" `Quick test_plan_none_is_identity_plus_seed;
      Alcotest.test_case "plan activates channels" `Quick test_plan_activates_channels;
      Alcotest.test_case "retries in metrics and trace" `Quick
        test_retries_surface_in_metrics_and_trace;
      Alcotest.test_case "fault-free run ignores seed" `Quick
        test_fault_free_run_unchanged_by_seed;
      Alcotest.test_case "straggler slows run" `Quick test_straggler_slows_run;
      Alcotest.test_case "throttle slows run" `Quick test_throttle_slows_memory_bound_run;
      QCheck_alcotest.to_alcotest prop_fault_runs_bit_identical;
      Alcotest.test_case "faulty sweep pool-invariant" `Slow
        test_tuned_sweep_under_faults_pool_invariant;
    ] )
