open Sw_util

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check int) "size 0" 0 (Heap.size h);
  Alcotest.(check bool) "pop None" true (Heap.pop h = None)

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.push h p v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  let popped = List.init 3 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> "?") in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] popped

let test_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 1.0 v) [ 1; 2; 3; 4 ];
  let popped = List.init 4 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "insertion order among equal priorities" [ 1; 2; 3; 4 ] popped

let test_peek () =
  let h = Heap.create () in
  Heap.push h 5.0 "x";
  Heap.push h 2.0 "y";
  (match Heap.peek h with
  | Some (p, v) ->
      Alcotest.(check string) "peek min" "y" v;
      Alcotest.(check (float 0.0)) "peek prio" 2.0 p
  | None -> Alcotest.fail "peek on non-empty");
  Alcotest.(check int) "peek does not pop" 2 (Heap.size h)

let test_interleaved () =
  let h = Heap.create () in
  Heap.push h 10.0 10;
  Heap.push h 1.0 1;
  (match Heap.pop h with Some (_, v) -> Alcotest.(check int) "min first" 1 v | None -> Alcotest.fail "pop");
  Heap.push h 0.5 0;
  (match Heap.pop h with
  | Some (_, v) -> Alcotest.(check int) "new min surfaces" 0 v
  | None -> Alcotest.fail "pop");
  match Heap.pop h with Some (_, v) -> Alcotest.(check int) "rest" 10 v | None -> Alcotest.fail "pop"

let test_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 1;
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_negative_priorities () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h p p) [ 0.0; -5.0; 3.0; -1.0 ];
  let popped = List.init 4 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> nan) in
  Alcotest.(check (list (float 0.0))) "negatives sort first" [ -5.0; -1.0; 0.0; 3.0 ] popped

let prop_heapsort =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:300
    QCheck.(list (float_range (-1e6) 1e6))
    (fun xs ->
      let h = Heap.create () in
      List.iter (fun x -> Heap.push h x x) xs;
      let out = List.filter_map (fun _ -> Option.map snd (Heap.pop h)) xs in
      out = List.stable_sort compare xs)

let prop_fifo_among_equal_keys =
  (* The documented tie-break: among entries with equal priority, pop
     returns them in global push order, even when pops interleave with
     the pushes.  Priorities are drawn from a 3-value set so ties
     dominate; each value carries its push index. *)
  QCheck.Test.make ~name:"equal priorities pop in global push order" ~count:300
    QCheck.(small_list (pair (oneofl [ 1.0; 2.0; 3.0 ]) bool))
    (fun ops ->
      let h = Heap.create () in
      let popped = ref [] in
      List.iteri
        (fun i (prio, also_pop) ->
          Heap.push h prio i;
          if also_pop then
            match Heap.pop h with Some pv -> popped := pv :: !popped | None -> ())
        ops;
      let rec drain () =
        match Heap.pop h with
        | Some pv ->
            popped := pv :: !popped;
            drain ()
        | None -> ()
      in
      drain ();
      (* within each priority class, push indices must appear ascending *)
      let seen : (float, int) Hashtbl.t = Hashtbl.create 4 in
      List.for_all
        (fun (prio, idx) ->
          let last = Option.value (Hashtbl.find_opt seen prio) ~default:(-1) in
          Hashtbl.replace seen prio idx;
          idx > last)
        (List.rev !popped))

let prop_size_tracks =
  QCheck.Test.make ~name:"size tracks pushes and pops" ~count:200
    QCheck.(small_list (float_range 0.0 100.0))
    (fun xs ->
      let h = Heap.create () in
      List.iteri (fun i x -> Heap.push h x i) xs;
      let n = List.length xs in
      let ok_push = Heap.size h = n in
      let rec drain k = if Heap.pop h = None then k else drain (k + 1) in
      ok_push && drain 0 = n)

let tests =
  ( "heap",
    [
      Alcotest.test_case "empty heap" `Quick test_empty;
      Alcotest.test_case "orders by priority" `Quick test_ordering;
      Alcotest.test_case "fifo on ties" `Quick test_fifo_ties;
      Alcotest.test_case "peek" `Quick test_peek;
      Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "negative priorities" `Quick test_negative_priorities;
      QCheck_alcotest.to_alcotest prop_heapsort;
      QCheck_alcotest.to_alcotest prop_fifo_among_equal_keys;
      QCheck_alcotest.to_alcotest prop_size_tracks;
    ] )
