(* The service layer: Json parse/build round-trips, the Prometheus
   renderer, request parsing and keys, handler payloads (validated and
   bit-identical between the daemon path and the one-shot CLI path),
   shared-state safety under concurrent memoize+journal traffic, and
   the server loop itself (ordering, shedding, error resilience, crash
   resume) driven over real file descriptors. *)

module Json = Sw_obs.Json
module Sink = Sw_obs.Sink
module Backend = Sw_backend.Backend
module Handler = Sw_serve.Handler
module Server = Sw_serve.Server

let config = Sw_sim.Config.default Sw_arch.Params.default

let entry name = Sw_workloads.Registry.find_exn name

let json = Alcotest.testable (Fmt.of_to_string Json.to_string) ( = )

(* ------------------------------------------------------------------ *)
(* Json builder/parser round-trips *)

let test_json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.1;
      Json.Float 1.0;
      Json.Float (-0.0);
      Json.Float 1e300;
      Json.Float 6.5e-21;
      Json.Float 486038.40000000014;
      Json.Str "";
      Json.Str "plain";
      Json.Str "esc \" \\ \n \t \r quotes";
      Json.Str "caf\xc3\xa9";  (* utf-8 survives *)
      Json.Arr [];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.Arr [ Json.Int 1; Json.Float 2.5; Json.Null ]);
          ("b", Json.Obj [ ("nested", Json.Str "x") ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' -> Alcotest.check json (Json.to_string v) v v'
      | Error msg -> Alcotest.failf "%s does not parse back: %s" (Json.to_string v) msg)
    cases;
  (* the Int/Float syntactic classes survive a round-trip *)
  Alcotest.check json "float stays float" (Json.Float 3.0)
    (Result.get_ok (Json.parse (Json.to_string (Json.Float 3.0))));
  Alcotest.check json "int stays int" (Json.Int 3)
    (Result.get_ok (Json.parse (Json.to_string (Json.Int 3))))

let test_json_roundtrip_qcheck () =
  let gen =
    QCheck.float_range (-1e18) 1e18
  in
  let prop f =
    match Json.parse (Json.float_lit f) with
    | Ok (Json.Float f') -> Int64.bits_of_float f' = Int64.bits_of_float f
    | Ok (Json.Int i) -> float_of_int i = f
    | _ -> false
  in
  QCheck.Test.check_exn (QCheck.Test.make ~count:500 ~name:"float_lit round-trips" gen prop)

let test_json_parse_unicode () =
  (match Json.parse {|"café"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "bmp escape" "caf\xc3\xa9" s
  | _ -> Alcotest.fail "bmp escape did not parse");
  match Json.parse {|"😀"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair did not parse"

let test_json_parse_errors () =
  let rejects s =
    match Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parser accepted %S" s
  in
  List.iter rejects
    [
      "";
      "{";
      "[1,]";
      "{\"a\": }";
      "0x10";
      "1 2";
      "\"unterminated";
      "\"bad \\q escape\"";
      "nul";
      "{\"a\": 1,}";
    ];
  (* accessors are total *)
  Alcotest.(check (option int)) "to_int on str" None (Json.to_int (Json.Str "3"));
  Alcotest.(check (option int)) "to_int on integral float" (Some 3) (Json.to_int (Json.Float 3.0));
  Alcotest.(check (option string)) "member on non-obj" None
    (Option.bind (Json.member "k" (Json.Arr [])) Json.to_str)

(* ------------------------------------------------------------------ *)
(* Prometheus rendering *)

let test_render_metrics () =
  let s = Sink.create () in
  Sink.incr s ~by:3 "serve.requests";
  Sink.add s "tuner.machine_us" 12.5;
  let text = Sink.render_metrics ~extra:[ ("up", 1.0) ] s in
  Alcotest.(check string) "exact text"
    "# TYPE swpm_serve_requests counter\nswpm_serve_requests 3\n# TYPE swpm_tuner_machine_us \
     counter\nswpm_tuner_machine_us 12.5\n# TYPE swpm_up counter\nswpm_up 1\n"
    text

let test_render_metrics_collisions () =
  (* sanitization collisions merge by summing instead of repeating a
     metric name (which Prometheus scrapers reject) *)
  let text = Sink.render_metrics_of [ ("a.b", 1.0); ("a_b", 2.0); ("z-y", 0.25) ] in
  Alcotest.(check string) "merged"
    "# TYPE swpm_a_b counter\nswpm_a_b 3\n# TYPE swpm_z_y counter\nswpm_z_y 0.25\n" text

let test_metrics_of_trace () =
  let s = Sink.create () in
  Sink.incr s ~by:7 "backend.sim.ok";
  Sink.add s "backend.sim.machine_us" 123.25;
  let path = Filename.temp_file "serve_trace" ".json" in
  Sw_obs.Chrome.write path s;
  let offline = Handler.metrics_of_trace path in
  Sys.remove path;
  match offline with
  | Error msg -> Alcotest.failf "metrics_of_trace: %s" msg
  | Ok text ->
      (* the offline dump restates the live renderer exactly *)
      Alcotest.(check string) "offline = live" (Sink.render_metrics s) text

(* ------------------------------------------------------------------ *)
(* Request parsing and keys *)

let test_parse_request_defaults () =
  match Handler.parse_request {|{"op": "tune", "kernel": "kmeans"}|} with
  | Error msg -> Alcotest.fail msg
  | Ok { Handler.id; verb; deadline_ms = _ } -> (
      Alcotest.check json "absent id is null" Json.Null id;
      match verb with
      | Handler.Tune t ->
          Alcotest.(check string) "backend default" "model" t.Handler.t_backend;
          Alcotest.(check string) "strategy default" "exhaustive" t.Handler.t_strategy;
          Alcotest.(check string) "fault level default" "mild" t.Handler.t_fault_level;
          Alcotest.(check (option int)) "seed default" None t.Handler.t_seed;
          Alcotest.(check (option string)) "checkpoint default" None t.Handler.t_checkpoint
      | _ -> Alcotest.fail "wrong verb")

let test_parse_request_errors () =
  let err line =
    match Handler.parse_request line with
    | Error msg -> msg
    | Ok _ -> Alcotest.failf "accepted %S" line
  in
  Alcotest.(check bool) "invalid json" true (String.length (err "nonsense") > 0);
  Alcotest.(check string) "missing op" "missing field \"op\"" (err {|{"kernel": "x"}|});
  Alcotest.(check string) "missing kernel" "missing field \"kernel\"" (err {|{"op": "predict"}|});
  Alcotest.(check string) "typed field" "field \"seed\": expected an integer"
    (err {|{"op": "predict", "kernel": "kmeans", "seed": "7"}|});
  Alcotest.(check bool) "unknown op named" true
    (String.length (err {|{"op": "frobnicate"}|}) > 0)

let test_request_key () =
  let parse line = Result.get_ok (Handler.parse_request line) in
  let a = parse {|{"id": 1, "op": "tune", "kernel": "kmeans", "seed": 5}|} in
  let b = parse {|{"id": 2, "op": "tune", "kernel": "kmeans", "seed": 5}|} in
  let c = parse {|{"id": 1, "op": "tune", "kernel": "kmeans", "seed": 6}|} in
  Alcotest.(check string) "id does not change the key" (Handler.request_key a)
    (Handler.request_key b);
  Alcotest.(check bool) "seed changes the key" true
    (Handler.request_key a <> Handler.request_key c);
  (* an auto-assigned checkpoint must not move the key, or the resume
     pass would derive a different journal path than the crashed run *)
  Alcotest.(check string) "checkpoint does not change the key" (Handler.request_key a)
    (Handler.request_key (Handler.with_checkpoint a "/tmp/x.journal"))

let test_strip_volatile () =
  let payload =
    Json.Obj
      [
        ("cycles", Json.Float 42.0);
        ("host_wall_s", Json.Float 0.1);
        ("nested", Json.Obj [ ("machine_us", Json.Float 3.0); ("keep", Json.Int 1) ]);
        ("arr", Json.Arr [ Json.Obj [ ("journal_hits", Json.Int 2) ] ]);
      ]
  in
  Alcotest.check json "volatile stripped recursively"
    (Json.Obj
       [
         ("cycles", Json.Float 42.0);
         ("nested", Json.Obj [ ("keep", Json.Int 1) ]);
         ("arr", Json.Arr [ Json.Obj [] ]);
       ])
    (Handler.strip_volatile payload)

(* ------------------------------------------------------------------ *)
(* Handler execution: every emitted JSON validates, and the daemon path
   equals the one-shot CLI path *)

let run_line state line =
  Handler.run state (Result.get_ok (Handler.parse_request line))

let test_every_response_validates () =
  let state = Handler.create () in
  let lines =
    [
      {|{"id": 1, "op": "ping"}|};
      {|{"id": 2, "op": "metrics"}|};
      {|{"id": 3, "op": "shutdown"}|};
      {|{"id": 4, "op": "predict", "kernel": "kmeans"}|};
      {|{"id": 5, "op": "predict", "kernel": "nbody", "backend": "sim", "seed": 7}|};
      {|{"id": 6, "op": "tune", "kernel": "lud", "strategy": "shortlist"}|};
      {|{"id": 7, "op": "timeline", "kernel": "kmeans", "faults": 3}|};
      {|{"id": 8, "op": "predict", "kernel": "nope"}|};
      {|{"id": 9, "op": "tune", "kernel": "kmeans", "strategy": "nope"}|};
    ]
  in
  List.iter
    (fun line ->
      let resp = run_line state line in
      let text = Handler.response_to_string resp in
      (match Json.validate text with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s -> invalid response (%s): %s" line msg text);
      (* serialization round-trips through this module's own parser *)
      Alcotest.check json line (Handler.response_to_json resp)
        (Result.get_ok (Json.parse text)))
    lines;
  (* error responses really are errors *)
  let resp = run_line state {|{"id": 8, "op": "predict", "kernel": "nope"}|} in
  Alcotest.(check bool) "unknown kernel is an error" true (Result.is_error resp.Handler.result)

let test_daemon_equals_oneshot () =
  let check_line line =
    let daemon =
      let state = Handler.create () in
      match (run_line state line).Handler.result with
      | Ok payload -> Handler.strip_volatile payload
      | Error msg -> Alcotest.failf "daemon path failed: %s" msg
    in
    let oneshot =
      let state = Handler.create () in
      match (run_line state line).Handler.result with
      | Ok payload -> Handler.strip_volatile payload
      | Error msg -> Alcotest.failf "one-shot path failed: %s" msg
    in
    Alcotest.check json line daemon oneshot
  in
  (* two fresh states (daemon vs CLI one-shot are both Handler.run on a
     fresh state) must agree bit-for-bit on the stable fields *)
  List.iter check_line
    [
      {|{"op": "predict", "kernel": "nbody", "backend": "sim", "seed": 11}|};
      {|{"op": "predict", "kernel": "kmeans", "backend": "hybrid"}|};
      {|{"op": "tune", "kernel": "kmeans", "backend": "sim", "strategy": "shortlist", "seed": 11}|};
      {|{"op": "tune", "kernel": "cfd", "scale": 0.25, "backend": "sim", "strategy": "adaptive", "rank": "surrogate", "seed": 11}|};
      {|{"op": "timeline", "kernel": "lud", "seed": 11, "faults": 2}|};
    ]

let test_shared_memo_across_requests () =
  let state = Handler.create () in
  let line = {|{"op": "predict", "kernel": "nbody", "backend": "sim", "seed": 7}|} in
  let cycles resp =
    match resp.Handler.result with
    | Ok payload -> Option.bind (Json.member "cycles" payload) Json.to_float
    | Error msg -> Alcotest.failf "predict failed: %s" msg
  in
  let first = cycles (run_line state line) in
  let hits_before = Sink.counter (Handler.sink state) "memo.hits" in
  let second = cycles (run_line state line) in
  Alcotest.(check (option (float 0.0))) "identical cycles" first second;
  Alcotest.(check (float 0.0)) "second request hit the shared memo" (hits_before +. 1.0)
    (Sink.counter (Handler.sink state) "memo.hits")

let test_degraded_tune_uses_model () =
  let state = Handler.create () in
  let req =
    { (Handler.tune_defaults ~kernel:"kmeans") with Handler.t_backend = "sim"; t_seed = Some 3 }
  in
  match Handler.tune state ~degrade:true req with
  | Error msg -> Alcotest.fail msg
  | Ok tr ->
      Alcotest.(check bool) "marked degraded" true tr.Handler.tr_degraded;
      Alcotest.(check string) "served by the model" "model" tr.Handler.tr_backend

let test_surrogate_ranked_tune_through_handler () =
  (* the handler resolves --rank through the same shared memo as the
     verifying backend and hands it to the adaptive strategy: the
     argmin must match the plain exhaustive tune of the same request *)
  Sw_learn.Surrogate.clear_cache ();
  let state = Handler.create () in
  let base =
    {
      (Handler.tune_defaults ~kernel:"kmeans") with
      Handler.t_scale = 0.25;
      t_backend = "sim";
      t_seed = Some 11;
    }
  in
  let ranked =
    match
      Handler.tune state
        { base with Handler.t_strategy = "adaptive"; t_rank = Some "surrogate" }
    with
    | Ok tr -> tr
    | Error msg -> Alcotest.failf "surrogate-ranked tune failed: %s" msg
  in
  let exhaustive =
    match Handler.tune state { base with Handler.t_strategy = "exhaustive" } with
    | Ok tr -> tr
    | Error msg -> Alcotest.failf "exhaustive tune failed: %s" msg
  in
  Alcotest.(check bool) "same argmin" true
    (ranked.Handler.tr_outcome.Sw_tuning.Tuner.best
    = exhaustive.Handler.tr_outcome.Sw_tuning.Tuner.best);
  Alcotest.(check bool) "ranking pass billed machine time" true
    (ranked.Handler.tr_outcome.Sw_tuning.Tuner.rank_machine_us > 0.0);
  let fits, _ = Sw_learn.Surrogate.cache_stats () in
  Alcotest.(check int) "handler trained the surrogate once" 1 fits;
  (* an unknown ranking backend is a typed error, not a crash *)
  match Handler.tune state { base with Handler.t_rank = Some "nonsense" } with
  | Ok _ -> Alcotest.fail "unknown rank backend must be rejected"
  | Error _ -> ()

let test_predict_timeout_degrades_to_model () =
  (* limit 0 disqualifies every simulation post-hoc, so the fallback
     chain answers with the static model and flags degradation *)
  let state = Handler.create ~sim_timeout_s:0.0 () in
  let req =
    {
      (Handler.predict_defaults ~kernel:"kmeans") with
      Handler.p_backend = "sim";
      p_seed = Some 3;
    }
  in
  match Handler.predict state req with
  | Error msg -> Alcotest.fail msg
  | Ok pr ->
      Alcotest.(check bool) "degraded" true pr.Handler.pr_degraded;
      let model =
        let state = Handler.create () in
        Result.get_ok (Handler.predict state { req with Handler.p_backend = "model" })
      in
      Alcotest.(check (float 0.0)) "model answered"
        model.Handler.pr_verdict.Backend.cycles pr.Handler.pr_verdict.Backend.cycles

(* ------------------------------------------------------------------ *)
(* Shared-state safety: concurrent memoize + journal append from 4
   domains with interleaved (repeated) requests gives exact hit/miss
   counts and a bit-identical argmin versus sequential. *)

let test_concurrent_memo_journal_exact () =
  let e = entry "kmeans" in
  let kernel = e.Sw_workloads.Registry.build ~scale:1.0 in
  let points =
    Sw_tuning.Space.enumerate ~grains:e.Sw_workloads.Registry.grains
      ~unrolls:e.Sw_workloads.Registry.unrolls ()
  in
  let variants = List.map (Sw_tuning.Space.to_variant ~active_cpes:64) points in
  let n = List.length variants in
  let path = Filename.temp_file "serve_memo" ".journal" in
  Sys.remove path;
  (* memo outermost so every duplicate is answered single-flight (exact
     counters under any interleaving); the journal underneath sees each
     distinct key exactly once, appended from whichever domain got
     there first *)
  let jnl = Backend.journal ~path config Backend.simulator in
  let memo = Backend.memoize (Backend.journaled jnl) in
  let b = Backend.memoized memo in
  let jobs = variants @ variants @ variants in
  let pool = Sw_util.Pool.create ~size:4 () in
  let par = Sw_util.Pool.map pool (fun v -> Backend.assess b config kernel v) jobs in
  Backend.journal_close jnl;
  Alcotest.(check int) "misses = distinct keys" n (Backend.memo_misses memo);
  Alcotest.(check int) "hits = duplicates" (2 * n) (Backend.memo_hits memo);
  Alcotest.(check int) "journal appends = distinct keys" n (Backend.journal_misses jnl);
  (* every copy of every verdict is bit-identical to a fresh sequential
     assessment *)
  let seq = List.map (fun v -> Backend.assess Backend.simulator config kernel v) variants in
  let cycles = function Ok v -> v.Backend.cycles | Error _ -> Float.nan in
  List.iteri
    (fun i r ->
      let reference = List.nth seq (i mod n) in
      Alcotest.(check bool)
        (Printf.sprintf "job %d bit-identical" i)
        true
        (Int64.bits_of_float (cycles r) = Int64.bits_of_float (cycles reference)))
    par;
  (* a resumed run replays the whole journal and reaches the same
     argmin without recomputing anything *)
  let jnl2 = Backend.journal ~path config Backend.simulator in
  let b2 = Backend.journaled jnl2 in
  let replayed = List.map (fun v -> Backend.assess b2 config kernel v) variants in
  Backend.journal_close jnl2;
  Sys.remove path;
  Alcotest.(check int) "replay answers everything" n (Backend.journal_hits jnl2);
  let argmin rs =
    List.fold_left
      (fun (best_i, best_c) (i, r) ->
        match r with
        | Ok v when v.Backend.cycles < best_c -> (i, v.Backend.cycles)
        | _ -> (best_i, best_c))
      (-1, Float.infinity)
      (List.mapi (fun i r -> (i, r)) rs)
  in
  let si, sc = argmin seq and ri, rc = argmin replayed in
  Alcotest.(check int) "same argmin index" si ri;
  Alcotest.(check bool) "argmin cycles bit-identical" true
    (Int64.bits_of_float sc = Int64.bits_of_float rc)

(* ------------------------------------------------------------------ *)
(* The server loop over real descriptors *)

let with_temp_dir f =
  let dir = Filename.temp_file "serve_state" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* feed the server its requests from a file (deterministic batching:
   everything is readable at once) and collect response lines *)
let run_server ?config:cfg ?state lines =
  let state = match state with Some s -> s | None -> Handler.create () in
  let req_path = Filename.temp_file "serve_req" ".jsonl" in
  let out_path = Filename.temp_file "serve_out" ".jsonl" in
  let oc = open_out req_path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  let input = Unix.openfile req_path [ Unix.O_RDONLY ] 0 in
  let output = open_out out_path in
  let stats = Server.serve ?config:cfg state ~input ~output in
  Unix.close input;
  close_out output;
  let responses = In_channel.with_open_bin out_path In_channel.input_all in
  Sys.remove req_path;
  Sys.remove out_path;
  let lines = String.split_on_char '\n' responses in
  (List.filter (fun l -> l <> "") lines, stats)

let parse_resp line =
  match Json.parse line with
  | Ok j -> j
  | Error msg -> Alcotest.failf "response is not JSON (%s): %s" msg line

let test_server_ordering_and_resilience () =
  let lines =
    [
      {|{"id": 1, "op": "ping"}|};
      "this is not json";
      {|{"id": 2, "op": "predict", "kernel": "kmeans"}|};
      "";
      {|{"id": 3, "op": "predict", "kernel": "nope"}|};
      {|{"id": 4, "op": "ping"}|};
    ]
  in
  let responses, stats = run_server lines in
  (* blank line skipped; every other line answered, in order *)
  Alcotest.(check int) "five responses" 5 (List.length responses);
  Alcotest.(check int) "stats agree" 5 stats.Server.served;
  Alcotest.(check int) "two errors (bad json, bad kernel)" 2 stats.Server.errors;
  let ids =
    List.map (fun l -> Option.value (Json.member "id" (parse_resp l)) ~default:Json.Null) responses
  in
  Alcotest.(check (list json)) "ids echoed in request order"
    [ Json.Int 1; Json.Null; Json.Int 2; Json.Int 3; Json.Int 4 ]
    ids;
  let oks =
    List.map (fun l -> Option.bind (Json.member "ok" (parse_resp l)) Json.to_bool) responses
  in
  Alcotest.(check (list (option bool))) "ok flags"
    [ Some true; Some false; Some true; Some false; Some true ]
    oks

let test_server_shed_watermark_exact () =
  let lines =
    List.init 5 (fun i ->
        Printf.sprintf {|{"id": %d, "op": "tune", "kernel": "kmeans", "backend": "sim"}|} i)
    @ [ Printf.sprintf {|{"id": 5, "op": "predict", "kernel": "kmeans"}|} ]
  in
  let cfg = { Server.default_config with Server.shed_watermark = 2 } in
  let responses, stats = run_server ~config:cfg lines in
  Alcotest.(check int) "all answered" 6 (List.length responses);
  Alcotest.(check int) "exactly the tunes past the watermark shed" 3 stats.Server.degraded;
  List.iteri
    (fun i line ->
      let j = parse_resp line in
      let degraded = Option.bind (Json.member "degraded" j) Json.to_bool in
      let expect = i >= 2 && i < 5 in
      Alcotest.(check (option bool)) (Printf.sprintf "position %d" i) (Some expect) degraded;
      if expect then
        Alcotest.(check (option json)) "shed tune served by the model" (Some (Json.Str "model"))
          (Option.map
             (fun r -> Option.value (Json.member "backend" r) ~default:Json.Null)
             (Json.member "result" j)))
    responses

let test_server_shutdown_and_pool () =
  let pool = Sw_util.Pool.create ~size:4 () in
  let lines =
    [
      {|{"id": 1, "op": "predict", "kernel": "kmeans", "backend": "sim"}|};
      {|{"id": 2, "op": "predict", "kernel": "nbody", "backend": "sim"}|};
      {|{"op": "shutdown"}|};
      {|{"id": 99, "op": "ping"}|};
    ]
  in
  let responses, stats = run_server lines in
  let pooled_responses, pooled_stats =
    let state = Handler.create () in
    let req_path = Filename.temp_file "serve_req" ".jsonl" in
    let out_path = Filename.temp_file "serve_out" ".jsonl" in
    let oc = open_out req_path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    let input = Unix.openfile req_path [ Unix.O_RDONLY ] 0 in
    let output = open_out out_path in
    let stats = Server.serve ~pool state ~input ~output in
    Unix.close input;
    close_out output;
    let all = In_channel.with_open_bin out_path In_channel.input_all in
    Sys.remove req_path;
    Sys.remove out_path;
    (List.filter (fun l -> l <> "") (String.split_on_char '\n' all), stats)
  in
  Alcotest.(check bool) "shutdown stops the loop" true stats.Server.shutdown;
  (* the shutdown request is answered; the ping after it in the same
     batch is too (the batch completes), but nothing further is read *)
  Alcotest.(check int) "batch completes" 4 (List.length responses);
  Alcotest.(check bool) "pooled shutdown too" true pooled_stats.Server.shutdown;
  (* pooled execution is invisible: same responses in the same order *)
  Alcotest.(check (list json)) "pool(4) bit-identical to sequential"
    (List.map (fun l -> Handler.strip_volatile (parse_resp l)) responses)
    (List.map (fun l -> Handler.strip_volatile (parse_resp l)) pooled_responses)

let test_server_resume_from_request_log () =
  with_temp_dir (fun dir ->
      let tune_line = {|{"id": "t1", "op": "tune", "kernel": "kmeans", "backend": "sim"}|} in
      (* manufacture a crashed session: a begin marker with no end *)
      let log = open_out (Filename.concat dir "requests.jsonl") in
      output_string log
        (Json.to_string
           (Json.Obj
              [ ("rq", Json.Int 1); ("ev", Json.Str "begin"); ("req", Json.Str tune_line) ])
        ^ "\n");
      close_out log;
      let state = Handler.create ~state_dir:dir () in
      let responses, stats = run_server ~state [] in
      Alcotest.(check int) "one replayed response" 1 (List.length responses);
      Alcotest.(check int) "counted as resumed" 1 stats.Server.resumed;
      let j = parse_resp (List.hd responses) in
      Alcotest.(check (option bool)) "marked resumed" (Some true)
        (Option.bind (Json.member "resumed" j) Json.to_bool);
      Alcotest.(check (option bool)) "and ok" (Some true)
        (Option.bind (Json.member "ok" j) Json.to_bool);
      (* the resumed tune ran under an auto-assigned checkpoint *)
      let checkpoints =
        List.filter
          (fun f -> Filename.check_suffix f ".journal")
          (Array.to_list (Sys.readdir dir))
      in
      Alcotest.(check int) "auto checkpoint created" 1 (List.length checkpoints);
      (* its best matches the plain one-shot run bit for bit *)
      let oneshot =
        let state = Handler.create () in
        match (run_line state tune_line).Handler.result with
        | Ok payload -> Handler.strip_volatile payload
        | Error msg -> Alcotest.fail msg
      in
      let resumed_payload =
        Handler.strip_volatile (Option.get (Json.member "result" j))
      in
      Alcotest.check json "resumed result = one-shot result" oneshot resumed_payload;
      (* a second start finds the end marker and replays nothing *)
      let responses2, stats2 = run_server ~state:(Handler.create ~state_dir:dir ()) [] in
      Alcotest.(check int) "nothing left to resume" 0 (List.length responses2);
      Alcotest.(check int) "no resumed" 0 stats2.Server.resumed)

let test_server_resume_rebuilds_surrogate_cache () =
  (* models live in process memory, so a crash loses them: recovery
     must drop whatever a prior life cached and retrain from its own
     configuration.  Pre-polluting the cache with another kernel's fit
     and counting fits after the resumed surrogate-ranked tune proves
     the clear happened — only the resumed kernel's fit is counted. *)
  with_temp_dir (fun dir ->
      Sw_learn.Surrogate.clear_cache ();
      let cfd = entry "cfd" in
      let kernel = cfd.Sw_workloads.Registry.build ~scale:0.25 in
      (match
         Backend.assess (Sw_learn.Surrogate.make ()) config kernel
           cfd.Sw_workloads.Registry.variant
       with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "pre-pollution assessment must succeed");
      let fits0, _ = Sw_learn.Surrogate.cache_stats () in
      Alcotest.(check int) "stale fit in the cache" 1 fits0;
      let tune_line =
        {|{"id": "t1", "op": "tune", "kernel": "kmeans", "scale": 0.25, "backend": "sim", "strategy": "adaptive", "rank": "surrogate", "seed": 11}|}
      in
      let log = open_out (Filename.concat dir "requests.jsonl") in
      output_string log
        (Json.to_string
           (Json.Obj
              [ ("rq", Json.Int 1); ("ev", Json.Str "begin"); ("req", Json.Str tune_line) ])
        ^ "\n");
      close_out log;
      let state = Handler.create ~state_dir:dir () in
      let responses, stats = run_server ~state [] in
      Alcotest.(check int) "one replayed response" 1 (List.length responses);
      Alcotest.(check int) "counted as resumed" 1 stats.Server.resumed;
      let j = parse_resp (List.hd responses) in
      Alcotest.(check (option bool)) "resumed surrogate tune ok" (Some true)
        (Option.bind (Json.member "ok" j) Json.to_bool);
      let fits1, _ = Sw_learn.Surrogate.cache_stats () in
      Alcotest.(check int) "recovery cleared the cache; only the resumed fit counts" 1
        fits1;
      (* and the retrained answer is the one-shot answer, bit for bit on
         the stable fields *)
      let oneshot =
        let state = Handler.create () in
        match (run_line state tune_line).Handler.result with
        | Ok payload -> Handler.strip_volatile payload
        | Error msg -> Alcotest.fail msg
      in
      Alcotest.check json "resumed = one-shot"
        oneshot
        (Handler.strip_volatile (Option.get (Json.member "result" j))))

(* ------------------------------------------------------------------ *)
(* Socket serving: two concurrent connections *)

let send_line fd s =
  let line = s ^ "\n" in
  ignore (Unix.write_substring fd line 0 (String.length line))

(* one response line, with a deadline: a serialized accept loop makes
   this fail cleanly instead of hanging the suite *)
let recv_line fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 1 in
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "timed out waiting for a response line"
    else
      match Unix.select [ fd ] [] [] 0.2 with
      | [], _, _ -> go ()
      | _ -> (
          match Unix.read fd b 0 1 with
          | 0 -> Alcotest.fail "server closed the connection early"
          | _ ->
              if Bytes.get b 0 = '\n' then Buffer.contents buf
              else (
                Buffer.add_char buf (Bytes.get b 0);
                go ()))
  in
  go ()

(* Deadline admission: a budget no estimate fits is refused with the
   typed response before any work runs; a budget only the degraded
   estimate fits is admitted degraded; a roomy budget is untouched. *)
let test_server_deadline_admission () =
  let state = Handler.create () in
  let lines =
    [
      (* tune:static prior 0.1s, degraded prior 0.05s: 1ms fits neither *)
      {|{"id": 1, "op": "tune", "kernel": "kmeans", "deadline_ms": 1}|};
      (* 70ms fits only the degraded estimate *)
      {|{"id": 2, "op": "tune", "kernel": "kmeans", "deadline_ms": 70}|};
      (* 60s fits everything *)
      {|{"id": 3, "op": "tune", "kernel": "kmeans", "deadline_ms": 60000}|};
      (* no deadline: never refused *)
      {|{"id": 4, "op": "ping"}|};
    ]
  in
  let responses, stats = run_server ~state lines in
  Alcotest.(check int) "all four answered" 4 (List.length responses);
  let resp i = parse_resp (List.nth responses i) in
  (* refused: typed, ok=false, marked, and in arrival order *)
  let r1 = resp 0 in
  Alcotest.(check (option json)) "refused id first" (Some (Json.Int 1)) (Json.member "id" r1);
  Alcotest.(check (option bool)) "refused not ok" (Some false)
    (Option.bind (Json.member "ok" r1) Json.to_bool);
  Alcotest.(check (option json)) "typed error" (Some (Json.Str "deadline_exceeded"))
    (Json.member "error" r1);
  Alcotest.(check (option bool)) "refusal marked" (Some true)
    (Option.bind (Json.member "deadline_exceeded" r1) Json.to_bool);
  (* degraded admission: served, marked degraded, not deadline_exceeded *)
  let r2 = resp 1 in
  Alcotest.(check (option bool)) "tight budget served" (Some true)
    (Option.bind (Json.member "ok" r2) Json.to_bool);
  Alcotest.(check (option bool)) "tight budget degraded" (Some true)
    (Option.bind (Json.member "degraded" r2) Json.to_bool);
  (* roomy budget: a plain response, no deadline field at all *)
  let r3 = resp 2 in
  Alcotest.(check (option bool)) "roomy budget served" (Some true)
    (Option.bind (Json.member "ok" r3) Json.to_bool);
  Alcotest.(check (option bool)) "roomy budget not degraded" (Some false)
    (Option.bind (Json.member "degraded" r3) Json.to_bool);
  Alcotest.(check (option json)) "no deadline field when unset" None
    (Json.member "deadline_exceeded" r3);
  Alcotest.(check int) "refusals are not errors-counter errors" 1 stats.Server.errors;
  let counter name = Sw_obs.Sink.counter (Handler.sink state) name in
  Alcotest.(check (float 0.)) "refusal counted" 1. (counter "serve.deadline_exceeded");
  Alcotest.(check (float 0.)) "degradation counted" 1. (counter "serve.deadline_degraded");
  (* pre-registered at zero even though nothing quarantined *)
  Alcotest.(check (float 0.)) "quarantine counter exists" 0. (counter "shard.quarantined");
  Alcotest.(check bool) "counters rendered" true
    (let text = Handler.metrics_text state in
     let contains needle =
       let nh = String.length text and nn = String.length needle in
       let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
       nn = 0 || go 0
     in
     List.for_all contains
       [ "serve_deadline_exceeded"; "serve_deadline_missed"; "shard_restarts" ])

(* A client that hangs up between sending a request and receiving its
   response costs the daemon one dropped connection, never the loop:
   later clients are served normally. *)
let test_server_socket_client_disconnect () =
  let path = Filename.temp_file "serve_sock_epipe" ".sock" in
  Sys.remove path;
  let state = Handler.create () in
  let server = Domain.spawn (fun () -> Server.serve_socket state ~path) in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while not (Sys.file_exists path) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  in
  (* the doomed client: ask for real work, vanish before the answer *)
  let doomed = connect () in
  send_line doomed {|{"id": "gone", "op": "tune", "kernel": "kmeans"}|};
  Unix.close doomed;
  (* the daemon must still be there for the next client *)
  let a = connect () in
  send_line a {|{"id": "alive", "op": "ping"}|};
  Alcotest.(check (option json)) "daemon survives the dead client" (Some (Json.Str "alive"))
    (Json.member "id" (parse_resp (recv_line a)));
  send_line a {|{"id": "bye", "op": "shutdown"}|};
  ignore (recv_line a);
  let stats = Domain.join server in
  Unix.close a;
  Alcotest.(check bool) "shutdown stopped the loop" true stats.Server.shutdown;
  Alcotest.(check bool) "disconnect counted" true
    (Sw_obs.Sink.counter (Handler.sink state) "serve.client_disconnects" >= 1.)

let test_server_socket_two_clients () =
  let path = Filename.temp_file "serve_sock" ".sock" in
  Sys.remove path;
  let state = Handler.create () in
  let server = Domain.spawn (fun () -> Server.serve_socket state ~path) in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while not (Sys.file_exists path) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  in
  let a = connect () in
  let b = connect () in
  let id_of line = Json.member "id" (parse_resp line) in
  (* the second connection is served while the first sits idle
     mid-session — queued-behind-EOF serving would time out here *)
  send_line b {|{"id": "b1", "op": "ping"}|};
  Alcotest.(check (option json)) "pending client served" (Some (Json.Str "b1"))
    (id_of (recv_line b));
  (* and the first connection still works, interleaved *)
  send_line a {|{"id": "a1", "op": "ping"}|};
  Alcotest.(check (option json)) "first client interleaved" (Some (Json.Str "a1"))
    (id_of (recv_line a));
  send_line b {|{"id": "b2", "op": "ping"}|};
  Alcotest.(check (option json)) "second round-trip" (Some (Json.Str "b2"))
    (id_of (recv_line b));
  (* shutdown from either client stops the whole loop *)
  send_line a {|{"id": "a2", "op": "shutdown"}|};
  Alcotest.(check (option json)) "shutdown acknowledged" (Some (Json.Str "a2"))
    (id_of (recv_line a));
  let stats = Domain.join server in
  Unix.close a;
  Unix.close b;
  Alcotest.(check bool) "shutdown stopped the loop" true stats.Server.shutdown;
  Alcotest.(check int) "four responses served" 4 stats.Server.served;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path)

let tests =
  ( "serve",
    [
      Alcotest.test_case "json builder/parser round-trips" `Quick test_json_roundtrip;
      Alcotest.test_case "json float literals round-trip (qcheck)" `Quick
        test_json_roundtrip_qcheck;
      Alcotest.test_case "json unicode escapes decode" `Quick test_json_parse_unicode;
      Alcotest.test_case "json parser rejects, accessors total" `Quick test_json_parse_errors;
      Alcotest.test_case "render_metrics exact text" `Quick test_render_metrics;
      Alcotest.test_case "render_metrics merges collisions" `Quick
        test_render_metrics_collisions;
      Alcotest.test_case "metrics --trace restates live metrics" `Quick test_metrics_of_trace;
      Alcotest.test_case "parse_request applies CLI defaults" `Quick
        test_parse_request_defaults;
      Alcotest.test_case "parse_request readable errors" `Quick test_parse_request_errors;
      Alcotest.test_case "request keys ignore id and checkpoint" `Quick test_request_key;
      Alcotest.test_case "strip_volatile is recursive" `Quick test_strip_volatile;
      Alcotest.test_case "every response validates and round-trips" `Quick
        test_every_response_validates;
      Alcotest.test_case "daemon result = one-shot result" `Quick test_daemon_equals_oneshot;
      Alcotest.test_case "memo cache survives across requests" `Quick
        test_shared_memo_across_requests;
      Alcotest.test_case "degraded tune sheds to the model" `Quick
        test_degraded_tune_uses_model;
      Alcotest.test_case "surrogate-ranked tune via the handler" `Quick
        test_surrogate_ranked_tune_through_handler;
      Alcotest.test_case "predict timeout degrades to the model" `Quick
        test_predict_timeout_degrades_to_model;
      Alcotest.test_case "concurrent memoize+journal is exact (4 domains)" `Quick
        test_concurrent_memo_journal_exact;
      Alcotest.test_case "server answers in order, survives bad input" `Quick
        test_server_ordering_and_resilience;
      Alcotest.test_case "server sheds exactly past the watermark" `Quick
        test_server_shed_watermark_exact;
      Alcotest.test_case "server shutdown; pool(4) bit-identical" `Quick
        test_server_shutdown_and_pool;
      Alcotest.test_case "server resumes an interrupted tune" `Quick
        test_server_resume_from_request_log;
      Alcotest.test_case "crash recovery rebuilds the surrogate cache" `Quick
        test_server_resume_rebuilds_surrogate_cache;
      Alcotest.test_case "socket serves two concurrent clients" `Quick
        test_server_socket_two_clients;
      Alcotest.test_case "deadline admission refuses, degrades, admits" `Quick
        test_server_deadline_admission;
      Alcotest.test_case "dead client drops the connection, not the daemon" `Quick
        test_server_socket_client_disconnect;
    ] )
