(* Feature extraction properties: the learned backend is only as
   deterministic as its inputs.  A feature vector must be a pure
   function of (params, kernel, variant) — bit-identical across fresh
   kernel builds and across pool sizes — every component must be finite
   (a regressor fed one NaN poisons every weight), and the width must
   agree with the published names so the bench's feature table cannot
   drift from the code. *)

module Features = Sw_learn.Features
module Regressor = Sw_learn.Regressor
module Registry = Sw_workloads.Registry
module Space = Sw_tuning.Space

let p = Sw_arch.Params.default

let subset_entries = Array.of_list Registry.tuning_subset

let variants entry =
  List.map
    (fun pt -> Space.to_variant pt ~active_cpes:64)
    (Space.enumerate ~grains:entry.Registry.grains ~unrolls:entry.Registry.unrolls ())

(* ------------------------------------------------------------------ *)
(* Shape: the vector is exactly [dim] wide and [names] is its legend *)

let test_dim_matches_names () =
  Alcotest.(check int) "names cover every component" Features.dim
    (Array.length Features.names);
  let entry = Registry.find_exn "kmeans" in
  let kernel = entry.Registry.build ~scale:0.25 in
  List.iter
    (fun v ->
      match Features.of_variant p kernel v with
      | Ok x -> Alcotest.(check int) "vector width" Features.dim (Array.length x)
      | Error _ -> ())
    (variants entry)

(* ------------------------------------------------------------------ *)
(* Purity: fresh builds of the same kernel give bit-identical vectors,
   and a pooled extraction agrees with the sequential one on every
   component *)

let prop_deterministic_across_builds =
  QCheck.Test.make ~name:"fresh kernel builds give bit-identical vectors" ~count:10
    QCheck.(pair (int_range 0 (Array.length subset_entries - 1)) (int_range 0 1))
    (fun (ei, si) ->
      let entry = subset_entries.(ei) in
      let scale = if si = 0 then 0.1 else 0.25 in
      let a = entry.Registry.build ~scale in
      let b = entry.Registry.build ~scale in
      List.for_all
        (fun v -> Features.of_variant p a v = Features.of_variant p b v)
        (variants entry))

let prop_pool_independent =
  QCheck.Test.make ~name:"pooled extraction equals sequential" ~count:8
    QCheck.(pair (int_range 0 (Array.length subset_entries - 1)) (int_range 1 4))
    (fun (ei, pool_size) ->
      let entry = subset_entries.(ei) in
      let kernel = entry.Registry.build ~scale:0.25 in
      let vs = variants entry in
      let sequential = List.map (Features.of_variant p kernel) vs in
      let pool = Sw_util.Pool.create ~size:pool_size () in
      let pooled = Sw_util.Pool.map pool (Features.of_variant p kernel) vs in
      sequential = pooled)

(* ------------------------------------------------------------------ *)
(* Finiteness: every component of every feasible variant in every
   tuning space is a finite float *)

let test_all_components_finite () =
  Array.iter
    (fun (entry : Registry.entry) ->
      let kernel = entry.Registry.build ~scale:0.25 in
      List.iter
        (fun v ->
          match Features.of_variant p kernel v with
          | Error _ -> ()
          | Ok x ->
              Array.iteri
                (fun i c ->
                  if not (Float.is_finite c) then
                    Alcotest.failf "%s: feature %s is %f" entry.Registry.name
                      Features.names.(i) c)
                x)
        (variants entry))
    subset_entries

(* ------------------------------------------------------------------ *)
(* Standardization round-trip: standardizing a sample with its own
   moments and inverting is the identity (within float rounding), and
   degenerate columns survive both directions *)

let prop_standardize_roundtrip =
  let gen =
    QCheck.(list_of_size Gen.(int_range 2 8) (list_of_size (Gen.return 5) (float_range (-100.) 100.)))
  in
  QCheck.Test.make ~name:"standardize o unstandardize = id on the sample" ~count:50 gen
    (fun rows ->
      QCheck.assume (rows <> []);
      let xs = Array.of_list (List.map Array.of_list rows) in
      let mean, std = Regressor.moments xs in
      Array.for_all
        (fun row ->
          let back =
            Regressor.unstandardize ~mean ~std (Regressor.standardize ~mean ~std row)
          in
          Array.for_all2
            (fun a b -> Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a))
            row back)
        xs)

let test_constant_column_standardizes () =
  (* a constant column gets unit scale, so both directions stay finite
     and exact *)
  let xs = [| [| 3.0; 1.0 |]; [| 3.0; 2.0 |]; [| 3.0; 3.0 |] |] in
  let mean, std = Regressor.moments xs in
  Alcotest.(check (float 0.0)) "degenerate std is 1" 1.0 std.(0);
  let z = Regressor.standardize ~mean ~std [| 3.0; 2.0 |] in
  Alcotest.(check (float 0.0)) "constant maps to 0" 0.0 z.(0);
  let back = Regressor.unstandardize ~mean ~std z in
  Alcotest.(check (float 1e-12)) "and back to itself" 3.0 back.(0)

let tests =
  ( "features",
    [
      Alcotest.test_case "dim matches names; vectors are dim wide" `Quick
        test_dim_matches_names;
      Alcotest.test_case "every feasible variant's features are finite" `Quick
        test_all_components_finite;
      Alcotest.test_case "constant columns standardize safely" `Quick
        test_constant_column_standardizes;
      QCheck_alcotest.to_alcotest prop_deterministic_across_builds;
      QCheck_alcotest.to_alcotest prop_pool_independent;
      QCheck_alcotest.to_alcotest prop_standardize_roundtrip;
    ] )
