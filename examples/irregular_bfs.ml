(* Irregular kernels on a cache-less machine (the Fig. 6 BFS story).

   BFS cannot stage its neighbor lookups through the SPM: every edge
   visit is a Gload that wastes most of a 256-byte DRAM transaction,
   and per-node degrees imbalance the CPEs.  This example quantifies
   both effects and shows where the model's error comes from. *)

let () =
  let params = Sw_arch.Params.default in
  let config = Sw_sim.Config.default params in
  let entry = Sw_workloads.Registry.find_exn "bfs" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:1.0 in
  let lowered = Sw_swacc.Lower.lower_exn params kernel entry.Sw_workloads.Registry.variant in

  let predicted = Swpm.Predict.predict_lowered params lowered in
  let measured = Sw_backend.Machine.metrics config lowered in

  Format.printf "BFS over %d nodes, 64 CPEs@.@." kernel.Sw_swacc.Kernel.n_elements;
  Format.printf "%a@.@." Swpm.Predict.pp predicted;
  Format.printf "%a@.@." Sw_sim.Metrics.pp measured;

  let waste = Swpm.Analysis.gload_waste_fraction params ~bytes_per_gload:8 in
  Format.printf "each 8-byte Gload wastes %.0f%% of its DRAM transaction@." (waste *. 100.0);

  (* per-CPE imbalance: the unmodeled effect the paper names *)
  let finish = measured.Sw_sim.Metrics.per_cpe_finish in
  let fastest = Sw_util.Stats.minimum finish and slowest = Sw_util.Stats.maximum finish in
  Format.printf "CPE finish-time spread: %.0f .. %.0f cycles (%.1f%% imbalance)@." fastest slowest
    ((slowest -. fastest) /. slowest *. 100.0);
  Format.printf "model error on this run: %.1f%% (the paper's worst case was BFS at 9.6%%)@."
    (Sw_util.Stats.relative_error ~predicted:predicted.Swpm.Predict.t_total
       ~actual:measured.Sw_sim.Metrics.cycles
    *. 100.0);

  (* what coalescing would buy: the same traffic in 32-byte gloads *)
  let coalesced = Swpm.Analysis.gload_waste_fraction params ~bytes_per_gload:32 in
  Format.printf
    "@.If neighbor lookups were coalesced into 32-byte Gloads, waste would drop@.from %.0f%% to \
     %.0f%% -- the \"further optimizations to coalesce memory accesses\"@.the paper calls for.@."
    (waste *. 100.0) (coalesced *. 100.0)
