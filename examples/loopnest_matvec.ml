(* Writing a kernel the way SWACC sources look: as a loop nest.

     for i = 0 .. rows-1           (distributed over CPEs)
       for j = 0 .. cols-1
         acc += A[i][j] * x[j]
       y[i] = acc

   The Loopnest front end derives the whole copy plan — A streams
   per-row, x stays SPM-resident per chunk, y is copy-out — and the rest
   of the toolchain (placement, prediction, simulation, tuning) applies
   unchanged. *)

open Sw_swacc

let rows = 8192

let cols = 512

let () =
  let params = Sw_arch.Params.default in
  let arrays =
    [ Loopnest.array_ "A" `IJ; Loopnest.array_ "x" `J; Loopnest.array_ ~elem_bytes:8 "y" `I ]
  in
  let body =
    [
      Body.Accum ("acc", Body.OAdd, Body.Mul (Body.load "A", Body.load "x"));
      Body.Store ("y", Body.Acc "acc");
    ]
  in
  let kernel = Loopnest.compile ~name:"matvec" ~outer:rows ~inner:cols ~arrays ~body () in

  (* what did the front end decide? *)
  List.iter
    (fun (c : Kernel.copy_spec) ->
      Format.printf "array %-4s %-5s %-11s %d B per %s@." c.Kernel.array_name
        (match c.Kernel.direction with
        | Kernel.In -> "in"
        | Kernel.Out -> "out"
        | Kernel.Inout -> "inout")
        (match c.Kernel.freq with
        | Kernel.Per_element -> "streamed"
        | Kernel.Per_chunk -> "SPM-resident")
        c.Kernel.bytes_per_elem
        (match c.Kernel.freq with Kernel.Per_element -> "row" | Kernel.Per_chunk -> "chunk"))
    kernel.Kernel.copies;

  (* pick the chunk size with the SPM placement in view *)
  let variant = { Kernel.grain = 8; unroll = 4; active_cpes = 64; double_buffer = false } in
  (match Spm_alloc.plan params kernel variant with
  | Ok plan -> Format.printf "@.%a@.@." Spm_alloc.pp plan
  | Error msg -> Format.printf "placement failed: %s@." msg);

  let lowered = Lower.lower_exn params kernel variant in
  let config = Sw_sim.Config.default params in
  let row = Sw_backend.Accuracy.evaluate config lowered in
  Format.printf "predicted %a, measured %a (%.1f%% error)@." Sw_util.Units.pp_cycles
    row.Sw_backend.Accuracy.predicted.Swpm.Predict.t_total Sw_util.Units.pp_cycles
    row.Sw_backend.Accuracy.measured.Sw_sim.Metrics.cycles
    (Sw_backend.Accuracy.error row *. 100.0)
