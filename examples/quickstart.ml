(* Quickstart: the paper's Vector-Add example (Figure 3).

   Builds C[i] = A[i] + B[i] over 1M doubles as a SWACC kernel, lowers
   it for 64 CPEs with a 256-element copy granularity, predicts its
   execution time with the static performance model, and checks the
   prediction against the cycle-level simulator. *)

let () =
  let params = Sw_arch.Params.default in
  let n = 1 lsl 20 in
  let elem = 8 (* double *) in
  let layout = Sw_swacc.Layout.create () in
  let array_ name direction =
    {
      Sw_swacc.Kernel.array_name = name;
      bytes_per_elem = elem;
      direction;
      freq = Sw_swacc.Kernel.Per_element;
      layout = Sw_swacc.Kernel.Contiguous;
      base_addr = Sw_swacc.Layout.alloc layout ~bytes:(n * elem);
    }
  in
  let body = [ Sw_swacc.Body.(Store ("c", Add (load "a", load "b"))) ] in
  let kernel =
    Sw_swacc.Kernel.make ~name:"vector-add" ~n_elements:n
      ~copies:[ array_ "a" Sw_swacc.Kernel.In; array_ "b" Sw_swacc.Kernel.In; array_ "c" Sw_swacc.Kernel.Out ]
      ~body ()
  in
  let variant = { Sw_swacc.Kernel.grain = 256; unroll = 4; active_cpes = 64; double_buffer = false } in
  let lowered = Sw_swacc.Lower.lower_exn params kernel variant in
  Format.printf "Lowered %s:@.%a@.@." kernel.Sw_swacc.Kernel.name Sw_swacc.Lowered.pp_summary
    lowered.Sw_swacc.Lowered.summary;

  (* Static prediction — no execution involved. *)
  let predicted = Swpm.Predict.predict_lowered params lowered in
  Format.printf "Model prediction:@.%a@.@." Swpm.Predict.pp predicted;

  (* "Measurement" on the simulated SW26010 core group. *)
  let config = Sw_sim.Config.default params in
  let measured = Sw_backend.Machine.metrics config lowered in
  Format.printf "Simulated execution:@.%a@.@." Sw_sim.Metrics.pp measured;

  let err =
    Sw_util.Stats.relative_error ~predicted:predicted.Swpm.Predict.t_total
      ~actual:measured.Sw_sim.Metrics.cycles
  in
  Format.printf "Predicted %.0f cycles (%.2f us), measured %.0f cycles (%.2f us): %.1f%% error@."
    predicted.Swpm.Predict.t_total
    (Swpm.Predict.us predicted ~freq_hz:params.Sw_arch.Params.freq_hz)
    measured.Sw_sim.Metrics.cycles
    (Sw_sim.Metrics.us measured ~freq_hz:params.Sw_arch.Params.freq_hz)
    (err *. 100.0)
