(* Choosing #active_CPEs with the model (the Section IV-3 insight).

   Using every CPE is not always fastest: when the per-CPE DMA slice
   falls below the 256-byte DRAM transaction, bandwidth is wasted on
   padding, and a memory-bound kernel slows down.  This example walks
   the WRF-dynamics surrogate across CPE counts, showing the model's
   Eq. 15 recommendation against simulated reality. *)

let () =
  let base_params = Sw_arch.Params.default in
  Format.printf "WRF dynamics surrogate: %d-byte rows sliced across CPEs@.@."
    Sw_workloads.Wrf_dynamics.row_bytes;
  Format.printf "%-6s %-8s %-10s %-12s %-12s %-8s@." "CPEs" "CGs" "slice" "measured" "predicted"
    "waste";
  List.iter
    (fun active ->
      let n_cgs = (active + 63) / 64 in
      let params = Sw_arch.Params.with_cgs base_params n_cgs in
      let kernel = Sw_workloads.Wrf_dynamics.kernel ~active ~scale:1.0 () in
      let variant =
        { Sw_workloads.Wrf_dynamics.variant with Sw_swacc.Kernel.active_cpes = active }
      in
      let lowered = Sw_swacc.Lower.lower_exn params kernel variant in
      let predicted = Swpm.Predict.predict_lowered params lowered in
      let measured =
        Sw_backend.Machine.metrics (Sw_sim.Config.default params) lowered
      in
      let slice = Sw_workloads.Wrf_dynamics.slice_bytes ~active in
      let waste =
        Sw_sim.Metrics.effective_bandwidth_fraction measured
          ~trans_size:params.Sw_arch.Params.trans_size
      in
      Format.printf "%-6d %-8d %-10s %-12.0f %-12.0f %5.1f%%@." active n_cgs
        (Printf.sprintf "%dB" slice) measured.Sw_sim.Metrics.cycles
        predicted.Swpm.Predict.t_total
        ((1.0 -. waste) *. 100.0))
    Sw_workloads.Wrf_dynamics.supported_active;

  (* the Eq. 15 recommendation at one core group *)
  let kernel64 = Sw_workloads.Wrf_dynamics.kernel ~active:64 ~scale:1.0 () in
  let lowered64 = Sw_swacc.Lower.lower_exn base_params kernel64 Sw_workloads.Wrf_dynamics.variant in
  let gain =
    Swpm.Analysis.fewer_cpes_gain base_params lowered64.Sw_swacc.Lowered.summary
      ~reduction_fraction:0.25
  in
  Format.printf
    "@.Eq 15: dropping from 64 to 48 CPEs (25%%) should save about %.0f cycles@.because T_DMA \
     exceeds T_comp on this memory-bound kernel.@."
    gain
