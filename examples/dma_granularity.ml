(* DMA granularity study (the Section IV-1 / Fig. 7 insight).

   Conventional wisdom said: enlarge the DMA granularity and fill the
   SPM.  The model says the opposite — as long as requests stay at or
   above the DRAM transaction size, *smaller* requests overlap better
   with computation (Eq. 8/13).  This example sweeps the copy
   granularity of the K-Means kernel, compares the model's Eq. 13
   saving against the simulator, and shows the spill-Gload cliff at
   tiny granularities. *)

let () =
  let params = Sw_arch.Params.default in
  let config = Sw_sim.Config.default params in
  let kernel = Sw_workloads.Kmeans.kernel ~scale:1.0 in
  let variant grain =
    { Sw_swacc.Kernel.grain; unroll = 4; active_cpes = 64; double_buffer = false }
  in

  let results =
    List.map
      (fun grain ->
        let lowered = Sw_swacc.Lower.lower_exn params kernel (variant grain) in
        let measured = Sw_backend.Machine.metrics config lowered in
        (grain, lowered, measured))
      [ 256; 128; 64; 32; 16; 8 ]
  in

  (* Eq. 13: predicted saving from splitting the coarsest configuration
     into more requests *)
  let _, coarsest, coarsest_m = List.hd results in
  let coarse_summary = coarsest.Sw_swacc.Lowered.summary in
  Format.printf "K-Means, 64 CPEs, %d points, baseline granularity 256 elements@.@."
    kernel.Sw_swacc.Kernel.n_elements;
  Format.printf "%-10s %-14s %-14s %-16s %s@." "grain" "measured" "vs baseline"
    "Eq13 predicted" "gloads/CPE";
  List.iter
    (fun (grain, lowered, measured) ->
      let summary = lowered.Sw_swacc.Lowered.summary in
      let n_after = Sw_swacc.Lowered.dma_requests_per_cpe summary in
      let eq13 =
        Swpm.Analysis.smaller_dma_gain params coarse_summary
          ~n_reqs_after:(int_of_float n_after)
      in
      Format.printf "%-10d %10.0f cyc %+10.0f cyc %+12.0f cyc %10d@." grain
        measured.Sw_sim.Metrics.cycles
        (coarsest_m.Sw_sim.Metrics.cycles -. measured.Sw_sim.Metrics.cycles)
        eq13 summary.Sw_swacc.Lowered.gload_count)
    results;
  Format.printf
    "@.Note how the measured improvement tracks Eq. 13 until the compiler's@.register spills \
     (Gloads) take over below 16 elements per request.@."
