(* Should I double-buffer?  (The Section IV-2 / Fig. 8 analysis.)

   Double buffering looks like a must-have optimization, but the model
   bounds its benefit at one virtual group's copy-in time (Eq. 14) —
   often just a few percent.  This example asks the model first, then
   verifies with two simulated runs of the N-body kernel. *)

let () =
  let params = Sw_arch.Params.default in
  let config = Sw_sim.Config.default params in
  let kernel = Sw_workloads.Nbody.kernel ~scale:1.0 in
  let base_variant = Sw_workloads.Nbody.variant in

  (* ask the model before writing any double-buffered code *)
  let summary =
    match Sw_swacc.Lower.summarize params kernel base_variant with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  let pred = Swpm.Predict.run params summary in
  let promised = Swpm.Analysis.double_buffer_gain params summary in
  Format.printf "Model analysis of %s:@.%a@.@." kernel.Sw_swacc.Kernel.name Swpm.Predict.pp pred;
  Format.printf
    "Eq 14: double buffering can save at most %.0f cycles (%.1f%% of the predicted total)@.@."
    promised
    (promised /. pred.Swpm.Predict.t_total *. 100.0);

  (* now pay for both implementations and check *)
  let run variant =
    let lowered = Sw_swacc.Lower.lower_exn params kernel variant in
    Sw_backend.Machine.cycles config lowered
  in
  let baseline = run base_variant in
  let with_db = run { base_variant with Sw_swacc.Kernel.double_buffer = true } in
  Format.printf "simulated baseline      : %.0f cycles@." baseline;
  Format.printf "simulated double-buffer : %.0f cycles@." with_db;
  Format.printf "measured saving         : %.0f cycles (%.1f%%), model promised %.0f@."
    (baseline -. with_db)
    ((baseline -. with_db) /. baseline *. 100.0)
    promised;
  if promised < 0.02 *. pred.Swpm.Predict.t_total then
    Format.printf
      "@.Verdict: not worth doubling the SPM footprint for this kernel -- exactly@.the kind of \
     conclusion the model gives you without writing the code.@."
