(* A whole application, not just a kernel: three K-Means iterations,
   each a distance/assignment pass over the points followed by a
   centroid-update reduction pass — launched stage by stage from the
   MPE, the way real SWACC programs run.

   The model predicts every stage statically; the end-to-end error stays
   at the single-kernel level. *)

open Sw_swacc

let update_kernel ~n =
  (* centroid update: stream points once, accumulate per-cluster sums *)
  let layout = Layout.create () in
  let points =
    {
      Kernel.array_name = "points";
      bytes_per_elem = Sw_workloads.Kmeans.elem_bytes;
      direction = Kernel.In;
      freq = Kernel.Per_element;
      layout = Kernel.Contiguous;
      base_addr = Layout.alloc layout ~bytes:(Sw_workloads.Kmeans.elem_bytes * n);
    }
  in
  let assign =
    {
      Kernel.array_name = "assign";
      bytes_per_elem = 4;
      direction = Kernel.In;
      freq = Kernel.Per_element;
      layout = Kernel.Contiguous;
      base_addr = Layout.alloc layout ~bytes:(4 * n);
    }
  in
  let sums =
    {
      Kernel.array_name = "sums";
      bytes_per_elem = Sw_workloads.Kmeans.clusters * Sw_workloads.Kmeans.features * 4;
      direction = Kernel.Out;
      freq = Kernel.Per_chunk;
      layout = Kernel.Contiguous;
      base_addr = Layout.alloc layout ~bytes:(Sw_workloads.Kmeans.clusters * Sw_workloads.Kmeans.features * 4);
    }
  in
  let body =
    [ Body.Accum ("sum", Body.OAdd, Body.Int_work (1, Body.load "points")) ]
  in
  Kernel.make ~name:"kmeans-update" ~n_elements:n ~copies:[ points; assign; sums ] ~body
    ~body_trips_per_element:Sw_workloads.Kmeans.features ()

let () =
  let params = Sw_arch.Params.default in
  let config = Sw_sim.Config.default params in
  let assign_kernel = Sw_workloads.Kmeans.kernel ~scale:1.0 in
  let n = assign_kernel.Kernel.n_elements in
  let assign_lowered = Lower.lower_exn params assign_kernel Sw_workloads.Kmeans.variant in
  let update_lowered =
    Lower.lower_exn params (update_kernel ~n)
      { Kernel.grain = 32; unroll = 4; active_cpes = 64; double_buffer = false }
  in
  let iterations = 3 in
  let stages =
    List.concat
      (List.init iterations (fun i ->
           [
             (Printf.sprintf "iter %d: assign" i, assign_lowered);
             (Printf.sprintf "iter %d: update" i, update_lowered);
           ]))
  in
  let app = Sw_backend.App.make stages in
  let report = Sw_backend.App.evaluate config app in
  Format.printf "K-Means, %d points, %d full iterations (MPE launches each stage):@.@.%a@.@."
    n iterations Sw_backend.App.pp_report report;
  Format.printf
    "The static model prices the whole application -- %d kernel launches --@.within %.1f%%, \
     before anything runs.@."
    (List.length stages) (report.Sw_backend.App.error *. 100.0)
