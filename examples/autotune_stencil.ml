(* Static auto-tuning walkthrough (the Table II methodology) on the
   HotSpot thermal stencil.

   Both tuners search the same tile-size x unroll space; the static one
   never runs anything — it compiles each variant and asks the
   performance model.  The example prints both search traces and the
   final comparison. *)

let () =
  let params = Sw_arch.Params.default in
  let config = Sw_sim.Config.default params in
  let entry = Sw_workloads.Registry.find_exn "hotspot" in
  let kernel = entry.Sw_workloads.Registry.build ~scale:1.0 in
  let points =
    Sw_tuning.Space.enumerate ~grains:entry.Sw_workloads.Registry.grains
      ~unrolls:entry.Sw_workloads.Registry.unrolls ()
  in
  Format.printf "Tuning %s over %d variants (tile %s x unroll %s)@.@."
    kernel.Sw_swacc.Kernel.name (List.length points)
    (String.concat "," (List.map string_of_int entry.Sw_workloads.Registry.grains))
    (String.concat "," (List.map string_of_int entry.Sw_workloads.Registry.unrolls));

  (* show the static tuner's view of the space *)
  Format.printf "%-8s %-8s %-16s %-16s@." "grain" "unroll" "model (cycles)" "simulated (cycles)";
  List.iter
    (fun (pt : Sw_tuning.Space.point) ->
      let variant = Sw_tuning.Space.to_variant pt ~active_cpes:64 in
      match Sw_swacc.Lower.lower params kernel variant with
      | Error msg -> Format.printf "%-8d %-8d infeasible: %s@." pt.Sw_tuning.Space.grain pt.Sw_tuning.Space.unroll msg
      | Ok lowered ->
          let predicted = Swpm.Predict.predict_lowered params lowered in
          let measured = Sw_backend.Machine.metrics config lowered in
          Format.printf "%-8d %-8d %-16.0f %-16.0f@." pt.Sw_tuning.Space.grain
            pt.Sw_tuning.Space.unroll predicted.Swpm.Predict.t_total
            measured.Sw_sim.Metrics.cycles)
    points;

  let static =
    Sw_tuning.Tuner.tune_exn ~backend:Sw_backend.Backend.static_model config kernel ~points
  in
  let empirical =
    Sw_tuning.Tuner.tune_exn ~backend:Sw_backend.Backend.simulator config kernel ~points
  in
  Format.printf "@.%a@.@.%a@.@." Sw_tuning.Tuner.pp_outcome static Sw_tuning.Tuner.pp_outcome
    empirical;
  Format.printf "tuning-time saving: %.1fx, quality loss: %.1f%%@."
    (empirical.Sw_tuning.Tuner.tuning_host_s /. Stdlib.max 1e-9 static.Sw_tuning.Tuner.tuning_host_s)
    (Sw_tuning.Tuner.quality_loss ~static ~empirical *. 100.0)
